"""Differential proof that the fast path equals the reference engine.

Every test runs the same (topology, traffic, load, params) point twice
-- once through :func:`repro.simulation.fastpath.run_fast`
(``fast_path=True``) and once through ``Simulator.run_reference`` --
and demands **bit-for-bit** agreement:

* :class:`SimResult` dataclass equality (accepted load, latency
  moments, percentiles, packet counters),
* per-channel busy-cycle arrays (the utilization side channel),
* packet traces, peak injection queue depth, unroutable drop counts,
* and, when instrumented, the full :class:`MetricsObserver` export.

Because both engines share one ``random.Random`` stream, any
divergence in RNG call *order* -- not just in results -- shows up as a
mismatch, which is what makes this a proof of equivalence rather than
a statistical comparison.  The quick matrix runs everywhere; the
exhaustive topology x traffic x load x seed sweep carries the ``slow``
marker and runs in the CI bench job.
"""

import json

import pytest

from repro.core.rfc import rfc_with_updown
from repro.faults.switches import links_of_switches
from repro.obs import MetricsObserver
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.traffic import make_traffic

BASE = SimulationParams(measure_cycles=300, warmup_cycles=100, seed=5)


def run_pair(
    topo,
    traffic_name,
    load,
    params,
    removed_links=None,
    with_observer=False,
    trace_limit=0,
):
    """Run one point on both engines; returns (ref_sim, fast_sim)."""
    sims = []
    for fast in (False, True):
        traffic = make_traffic(
            traffic_name, topo.num_terminals, rng=params.seed + 1
        )
        sim = Simulator(
            topo,
            traffic,
            load,
            params.scaled(fast_path=fast),
            removed_links,
            trace_limit=trace_limit,
            observer=MetricsObserver() if with_observer else None,
        )
        sim.result = sim.run()
        sims.append(sim)
    return sims


def assert_identical(ref, fast):
    """The full bit-for-bit contract between the two engines."""
    assert ref.result == fast.result
    assert ref.ch_busy_cycles == fast.ch_busy_cycles
    assert ref.traces == fast.traces
    assert ref.max_inject_queue == fast.max_inject_queue
    assert ref.unroutable_packets == fast.unroutable_packets
    # Shared post-run inspection must agree too (same channel state).
    assert ref.link_utilization() == fast.link_utilization()
    assert ref.batch_accepted_loads() == fast.batch_accepted_loads()
    if ref.observer is not None:
        ref_export = json.dumps(ref.observer.export(), sort_keys=True)
        fast_export = json.dumps(fast.observer.export(), sort_keys=True)
        assert ref_export == fast_export


@pytest.fixture(scope="module")
def topologies(cft_4_3, oft_q2_l2, rrn_16):
    rfc, _ = rfc_with_updown(8, 16, 3, rng=7)
    return {"rfc": rfc, "cft": cft_4_3, "oft": oft_q2_l2, "rrn": rrn_16}


class TestQuickMatrix:
    """Fast subset of the matrix -- runs in every dev invocation."""

    @pytest.mark.parametrize("name", ["rfc", "cft", "oft", "rrn"])
    def test_uniform_mid_load(self, topologies, name):
        ref, fast = run_pair(topologies[name], "uniform", 0.5, BASE)
        assert_identical(ref, fast)

    @pytest.mark.parametrize(
        "traffic", ["random-pairing", "fixed-random", "shuffle"]
    )
    def test_traffic_patterns(self, topologies, traffic):
        ref, fast = run_pair(topologies["rfc"], traffic, 0.6, BASE)
        assert_identical(ref, fast)

    @pytest.mark.parametrize("load", [0.1, 0.9])
    def test_load_extremes(self, topologies, load):
        ref, fast = run_pair(topologies["rfc"], "uniform", load, BASE)
        assert_identical(ref, fast)


class TestConfigVariants:
    """Engine knobs that exercise distinct fast-path branches."""

    def test_valiant(self, topologies):
        params = BASE.scaled(valiant=True)
        ref, fast = run_pair(topologies["rfc"], "uniform", 0.5, params)
        assert_identical(ref, fast)

    def test_valiant_two_vcs(self, topologies):
        params = BASE.scaled(valiant=True, virtual_channels=2)
        ref, fast = run_pair(topologies["rfc"], "uniform", 0.6, params)
        assert_identical(ref, fast)

    def test_adaptive_up_selection(self, topologies):
        params = BASE.scaled(up_selection="adaptive")
        ref, fast = run_pair(topologies["rfc"], "uniform", 0.7, params)
        assert_identical(ref, fast)

    def test_rotating_arbiter(self, topologies):
        params = BASE.scaled(arbiter="rotating")
        ref, fast = run_pair(topologies["rfc"], "uniform", 0.7, params)
        assert_identical(ref, fast)

    def test_multi_iteration_arbitration(self, topologies):
        params = BASE.scaled(arbitration_iterations=3)
        ref, fast = run_pair(topologies["rfc"], "uniform", 0.8, params)
        assert_identical(ref, fast)

    def test_nonminimal_routing(self, topologies):
        params = BASE.scaled(minimal_routing=False)
        ref, fast = run_pair(
            topologies["rfc"], "random-pairing", 0.6, params
        )
        assert_identical(ref, fast)

    def test_direct_adaptive_multi_iteration(self, topologies):
        params = BASE.scaled(
            up_selection="adaptive", arbitration_iterations=2
        )
        ref, fast = run_pair(topologies["rrn"], "uniform", 0.5, params)
        assert_identical(ref, fast)

    def test_single_phit_saturating(self, topologies):
        params = BASE.scaled(packet_phits=1)
        ref, fast = run_pair(topologies["rfc"], "uniform", 1.0, params)
        assert_identical(ref, fast)

    def test_longer_links(self, topologies):
        params = BASE.scaled(link_latency=3)
        ref, fast = run_pair(topologies["rfc"], "uniform", 0.6, params)
        assert_identical(ref, fast)

    def test_single_vc(self, topologies):
        params = BASE.scaled(virtual_channels=1)
        ref, fast = run_pair(topologies["rrn"], "uniform", 0.3, params)
        assert_identical(ref, fast)


class TestFaults:
    """Pruned networks: CSR tables must mirror the pruned routers."""

    def test_removed_links_rfc(self, topologies):
        links = list(topologies["rfc"].links())
        removed = [links[3], links[17], links[40]]
        ref, fast = run_pair(
            topologies["rfc"], "uniform", 0.6, BASE, removed_links=removed
        )
        assert_identical(ref, fast)

    def test_removed_links_rrn(self, topologies):
        links = list(topologies["rrn"].links())
        removed = [links[1], links[9]]
        ref, fast = run_pair(
            topologies["rrn"], "uniform", 0.4, BASE, removed_links=removed
        )
        assert_identical(ref, fast)

    def test_switch_fault_rfc(self, topologies):
        """Whole-switch loss (all incident links removed) -- packets to
        unreachable leaves are dropped identically by both engines."""
        topo = topologies["rfc"]
        dead = {topo.switch_id(1, 0), topo.switch_id(2, 1)}
        removed = links_of_switches(topo, dead)
        ref, fast = run_pair(
            topo, "uniform", 0.5, BASE, removed_links=removed
        )
        assert_identical(ref, fast)

    def test_switch_fault_with_unroutable_pairs(self, topologies):
        """Killing every fabric switch over a leaf forces unroutable
        drops; the drop accounting must match."""
        topo = topologies["oft"]
        dead = {topo.switch_id(1, 0)}
        removed = links_of_switches(topo, dead)
        ref, fast = run_pair(
            topo, "uniform", 0.4, BASE, removed_links=removed
        )
        assert_identical(ref, fast)
        assert ref.unroutable_packets == fast.unroutable_packets


class TestInstrumented:
    """Observer hooks must fire with identical payloads."""

    def test_metrics_observer_rfc(self, topologies):
        ref, fast = run_pair(
            topologies["rfc"], "uniform", 0.6, BASE, with_observer=True
        )
        assert_identical(ref, fast)

    def test_metrics_observer_direct(self, topologies):
        ref, fast = run_pair(
            topologies["rrn"], "uniform", 0.5, BASE, with_observer=True
        )
        assert_identical(ref, fast)

    def test_metrics_observer_valiant_with_traces(self, topologies):
        params = BASE.scaled(valiant=True)
        ref, fast = run_pair(
            topologies["rfc"],
            "locality",
            0.5,
            params,
            with_observer=True,
            trace_limit=40,
        )
        assert_identical(ref, fast)

    def test_traces_and_faults_together(self, topologies):
        links = list(topologies["rfc"].links())
        ref, fast = run_pair(
            topologies["rfc"],
            "uniform",
            0.6,
            BASE,
            removed_links=[links[5]],
            with_observer=True,
            trace_limit=60,
        )
        assert_identical(ref, fast)


@pytest.mark.slow
class TestFullMatrix:
    """The exhaustive sweep (CI bench job): topology x traffic x load
    x seed, plus faulted and instrumented axes."""

    @pytest.mark.parametrize("name", ["rfc", "cft", "oft", "rrn"])
    @pytest.mark.parametrize(
        "traffic", ["uniform", "random-pairing", "fixed-random"]
    )
    @pytest.mark.parametrize("load", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("seed", [0, 11])
    def test_matrix_point(self, topologies, name, traffic, load, seed):
        params = BASE.scaled(seed=seed)
        ref, fast = run_pair(topologies[name], traffic, load, params)
        assert_identical(ref, fast)

    @pytest.mark.parametrize("name", ["rfc", "rrn"])
    @pytest.mark.parametrize("seed", [2, 7])
    def test_matrix_faulted_instrumented(self, topologies, name, seed):
        topo = topologies[name]
        links = list(topo.links())
        removed = [links[seed], links[seed + 4]]
        params = BASE.scaled(seed=seed)
        ref, fast = run_pair(
            topo,
            "uniform",
            0.6,
            params,
            removed_links=removed,
            with_observer=True,
            trace_limit=30,
        )
        assert_identical(ref, fast)
