"""Property tests for the fast path's two core data structures.

1. :class:`~repro.simulation.fastpath.EventWheel` dequeues in exactly
   the ``(time, seq)`` order of the reference engine's ``heapq`` for
   arbitrary push/pop interleavings that respect the engine's
   discipline (never schedule into the past) -- including events past
   the horizon, which the wheel drops at push time and the heap never
   pops (the reference loop breaks on them).
2. CSR candidate tables from
   :func:`~repro.simulation.fastpath.build_candidate_table` agree with
   :meth:`Simulator._output_candidates` for every (switch,
   destination, phase) on randomly generated small RFCs and direct
   networks, including pruned (faulted) instances.
"""

import heapq

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.rfc import radix_regular_rfc
from repro.routing.table import CsrTable
from repro.routing.updown import RoutingError
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.fastpath import EventWheel, build_candidate_table
from repro.simulation.packet import Packet
from repro.simulation.traffic import make_traffic
from repro.topologies.rrn import random_regular_network

# ----------------------------------------------------------------------
# Event wheel vs heapq
# ----------------------------------------------------------------------

# An op is either a push (time offset from the last popped time) or a
# pop; offsets can exceed the horizon to exercise the drop path.
ops_lists = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(min_value=0, max_value=70)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=120,
)


class HeapModel:
    """The reference engine's schedule: heapq ordered by (time, seq).

    Events past the horizon are pushed (as the reference does) but a
    pop stops at them, mirroring the run loop's ``break`` -- once the
    top exceeds the horizon nothing is ever popped again.
    """

    def __init__(self, horizon):
        self.horizon = horizon
        self.heap = []
        self.seq = 0

    def push(self, time, payload):
        self.seq += 1
        heapq.heappush(self.heap, (time, self.seq, payload))

    def pop(self):
        if not self.heap or self.heap[0][0] > self.horizon:
            return None
        time, _, payload = heapq.heappop(self.heap)
        return time, payload


@given(ops=ops_lists, horizon=st.integers(min_value=0, max_value=60))
def test_wheel_matches_heapq_order(ops, horizon):
    wheel = EventWheel(horizon)
    model = HeapModel(horizon)
    current = 0
    payload = 0
    for op, offset in ops:
        if op == "push":
            time = current + offset
            wheel.push(time, payload)
            model.push(time, payload)
            payload += 1
        else:
            got = wheel.pop()
            expected = model.pop()
            assert got == expected
            if got is None:
                # Drained past the horizon: the engine's run is over
                # and nothing is ever pushed again.
                return
            current = got[0]
    # Full drain must agree event for event.
    while True:
        got = wheel.pop()
        expected = model.pop()
        assert got == expected
        if got is None:
            break


@given(
    times=st.lists(
        st.integers(min_value=0, max_value=40), min_size=1, max_size=60
    )
)
def test_wheel_same_cycle_is_fifo(times):
    """All events of one cycle come back in push order (seq order)."""
    wheel = EventWheel(40)
    for i, time in enumerate(times):
        assert wheel.push(time, i)
    popped = []
    while (item := wheel.pop()) is not None:
        popped.append(item)
    assert popped == sorted(
        ((time, i) for i, time in enumerate(times)),
        key=lambda pair: (pair[0], pair[1]),
    )


def test_wheel_drops_past_horizon():
    wheel = EventWheel(5)
    assert not wheel.push(6, "late")
    assert wheel.push(5, "edge")
    assert len(wheel) == 1
    assert wheel.pop() == (5, "edge")
    assert wheel.pop() is None


def test_wheel_rejects_scheduling_into_the_past():
    wheel = EventWheel(10)
    wheel.push(4, "a")
    assert wheel.pop() == (4, "a")
    with pytest.raises(ValueError):
        wheel.push(3, "too-late")
    # Same-cycle pushes while draining that cycle stay legal (the
    # engine's credit->arbitration wake does exactly this).
    wheel.push(4, "same-cycle")
    assert wheel.pop() == (4, "same-cycle")


def test_wheel_rejects_negative_horizon():
    with pytest.raises(ValueError):
        EventWheel(-1)


# ----------------------------------------------------------------------
# CSR candidate tables vs the reference router
# ----------------------------------------------------------------------

rfc_configs = st.fixed_dictionaries(
    {
        "radix": st.sampled_from([4, 6]),
        "n1": st.sampled_from([4, 6, 8]),
        "levels": st.sampled_from([2, 3]),
        "seed": st.integers(min_value=0, max_value=200),
        "faults": st.integers(min_value=0, max_value=3),
    }
)


def _build_sim(topo, removed, valiant=False):
    params = SimulationParams(
        measure_cycles=10, warmup_cycles=0, seed=1, valiant=valiant
    )
    traffic = make_traffic("uniform", topo.num_terminals, rng=2)
    return Simulator(topo, traffic, 0.5, params, removed)


def _reference_row(sim, switch, packet):
    """(flag, candidate channel ids) as the reference engine sees it."""
    try:
        cands = sim._output_candidates(switch, packet)
    except RoutingError:
        return CsrTable.UNROUTABLE, []
    if cands and sim.ch_kind[cands[0]] != 0:  # _LINK
        return CsrTable.DELIVER, []
    return CsrTable.ROUTE, cands


@given(config=rfc_configs)
def test_csr_table_matches_reference_rfc(config):
    # Radix-regular RFCs need R/2 <= N_l = N1/2 roots.
    assume(config["radix"] <= config["n1"])
    topo = radix_regular_rfc(
        config["radix"], config["n1"], config["levels"], rng=config["seed"]
    )
    links = topo.links()
    removed = links[: config["faults"]]
    sim = _build_sim(topo, removed)
    table = build_candidate_table(sim)
    assert table.num_sources == topo.num_switches
    assert table.num_dests == topo.num_leaves
    hosts = topo.hosts_per_leaf
    for switch in range(topo.num_switches):
        for leaf in range(topo.num_leaves):
            packet = Packet(src=0, dst=leaf * hosts, created=0)
            flag, cands = _reference_row(sim, switch, packet)
            assert table.flag(switch, leaf) == flag
            assert list(table.candidates(switch, leaf)) == cands


@given(config=rfc_configs)
def test_csr_table_matches_reference_valiant_phase(config):
    """The Valiant randomization phase routes toward the via leaf with
    the same table -- verify against the reference's via branch."""
    assume(config["radix"] <= config["n1"])
    topo = radix_regular_rfc(
        config["radix"], config["n1"], config["levels"], rng=config["seed"]
    )
    if topo.num_leaves < 2:
        return
    sim = _build_sim(topo, None, valiant=True)
    table = build_candidate_table(sim)
    hosts = topo.hosts_per_leaf
    for switch in range(topo.num_switches):
        for via_leaf in range(topo.num_leaves):
            if sim.level_of[switch] == 0 and sim.index_of[switch] == via_leaf:
                # At the via leaf the reference clears the via and falls
                # through to destination routing -- covered above.
                continue
            packet = Packet(
                src=0, dst=0, created=0, via=via_leaf * hosts
            )
            flag, cands = _reference_row(sim, switch, packet)
            assert packet.via is not None  # reference must not clear it
            assert table.flag(switch, via_leaf) == flag
            assert list(table.candidates(switch, via_leaf)) == cands


@given(
    seed=st.integers(min_value=0, max_value=200),
    faults=st.integers(min_value=0, max_value=3),
)
def test_csr_table_matches_reference_direct(seed, faults):
    topo = random_regular_network(12, 3, 2, rng=seed)
    removed = topo.links()[:faults]
    sim = _build_sim(topo, removed)
    table = build_candidate_table(sim)
    assert table.num_sources == topo.num_switches
    assert table.num_dests == topo.num_switches
    for switch in range(topo.num_switches):
        for dest in range(topo.num_switches):
            packet = Packet(src=0, dst=dest * 2, created=0)
            flag, cands = _reference_row(sim, switch, packet)
            if flag == CsrTable.ROUTE and not cands:
                # Reference returns [] for unreachable direct pairs;
                # the table classifies them explicitly.
                assert table.flag(switch, dest) in (
                    CsrTable.ROUTE,
                    CsrTable.UNROUTABLE,
                )
                assert list(table.candidates(switch, dest)) == []
                continue
            assert table.flag(switch, dest) == flag
            assert list(table.candidates(switch, dest)) == cands


def test_to_lists_mirrors_arrays():
    """The hot-loop list mirror must agree with the numpy arrays."""
    table = CsrTable.build(
        2,
        3,
        lambda s, d: (
            CsrTable.UNROUTABLE if (s, d) == (1, 2) else CsrTable.ROUTE,
            [] if (s, d) == (1, 2) else [s * 10 + d],
        ),
    )
    lists = table.to_lists()
    assert len(lists) == 6
    for source in range(2):
        for dest in range(3):
            key = table.key(source, dest)
            if table.flag(source, dest) == CsrTable.UNROUTABLE:
                assert lists[key] is None
            else:
                assert lists[key] == list(table.candidates(source, dest))


def test_source_of_value_expansion():
    table = CsrTable.build(
        2, 2, lambda s, d: (CsrTable.ROUTE, [0] * (s + 1))
    )
    assert table.source_of_value().tolist() == [0, 0, 1, 1, 1, 1]
