"""Property-based invariants of up/down routing (Section 4.1).

Every route the router produces over a randomized RFC instance must be
a strict up-phase followed by a strict down-phase, acyclic, built from
real topology edges, endpoint-correct, and (in minimal mode) exactly
``2 * min_ascent`` hops long.  These invariants are what make up/down
routing deadlock-free, so they must hold for *every* instance and
seed, not just the fixtures -- hence Hypothesis.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rfc import radix_regular_rfc
from repro.core.theory import rfc_max_leaves
from repro.routing.updown import RoutingError, UpDownRouter


@st.composite
def rfc_routers(draw):
    """A randomized feasible RFC instance plus its router and a seed."""
    radix = draw(st.sampled_from([4, 6, 8]))
    levels = draw(st.sampled_from([2, 3]))
    cap = min(rfc_max_leaves(radix, levels), 20)
    n1 = draw(
        st.integers(radix // 2, cap // 2).map(lambda k: 2 * k)
    )
    seed = draw(st.integers(min_value=0, max_value=100_000))
    topo = radix_regular_rfc(radix, n1, levels, rng=seed)
    router = UpDownRouter.for_topology(topo)
    return topo, router, seed


def _phase_profile(hops):
    """Level deltas of consecutive hops: must be +1s then -1s."""
    return [lb - la for (la, _), (lb, _) in zip(hops, hops[1:])]


def _assert_route_invariants(topo, router, a, b, seed, minimal=True):
    hops = router.path(a, b, rng=seed, minimal=minimal)

    # Endpoint-correct: starts at leaf a, ends at leaf b, both level 0.
    assert hops[0] == (0, a)
    assert hops[-1] == (0, b)

    # Acyclic: no switch visited twice.
    assert len(set(hops)) == len(hops)

    # Strict up-phase then down-phase: deltas are +1... then -1...,
    # with no -1 followed by +1 (a down-up turn would break deadlock
    # freedom).
    deltas = _phase_profile(hops)
    assert set(deltas) <= {1, -1}
    if deltas:
        first_down = deltas.index(-1) if -1 in deltas else len(deltas)
        assert all(d == 1 for d in deltas[:first_down])
        assert all(d == -1 for d in deltas[first_down:])

    # Every hop is a real topology edge.
    for (la, ia), (lb, ib) in zip(hops, hops[1:]):
        if lb == la + 1:
            assert ib in topo.up_neighbors(la, ia)
        else:
            assert ia in topo.up_neighbors(lb, ib)

    # Minimal routes have exactly 2 * min_ascent hops.
    if minimal and a != b:
        assert len(hops) - 1 == 2 * router.min_ascent(0, a, b)
    return hops


@settings(max_examples=30, deadline=None)
@given(data=st.data(), instance=rfc_routers())
def test_route_is_strict_up_then_down(data, instance):
    topo, router, seed = instance
    n1 = topo.num_leaves
    a = data.draw(st.integers(0, n1 - 1), label="src leaf")
    b = data.draw(st.integers(0, n1 - 1), label="dst leaf")
    if not router.reachable(a, b):
        with pytest.raises(RoutingError):
            router.path(a, b, rng=seed)
        return
    _assert_route_invariants(topo, router, a, b, seed, minimal=True)


@settings(max_examples=30, deadline=None)
@given(data=st.data(), instance=rfc_routers())
def test_nonminimal_routes_still_updown(data, instance):
    """minimal=False may lengthen routes but never bends them."""
    topo, router, seed = instance
    n1 = topo.num_leaves
    a = data.draw(st.integers(0, n1 - 1), label="src leaf")
    b = data.draw(st.integers(0, n1 - 1), label="dst leaf")
    if not router.reachable(a, b):
        return
    hops = _assert_route_invariants(
        topo, router, a, b, seed, minimal=False
    )
    assert len(hops) - 1 >= 2 * router.min_ascent(0, a, b) or a == b


@settings(max_examples=30, deadline=None)
@given(instance=rfc_routers())
def test_path_length_symmetric(instance):
    """Up/down distance is symmetric (routes are reversible)."""
    topo, router, _ = instance
    n1 = topo.num_leaves
    rand = random.Random(0)
    for _ in range(10):
        a, b = rand.randrange(n1), rand.randrange(n1)
        if router.reachable(a, b):
            assert router.path_length(a, b) == router.path_length(b, a)
        else:
            assert not router.reachable(b, a)


@settings(max_examples=30, deadline=None)
@given(data=st.data(), instance=rfc_routers())
def test_next_hops_agree_with_reachability(data, instance):
    """At every switch of a route, next_hops offers >= 1 candidate and
    all candidates keep the destination reachable."""
    topo, router, seed = instance
    n1 = topo.num_leaves
    a = data.draw(st.integers(0, n1 - 1), label="src leaf")
    b = data.draw(st.integers(0, n1 - 1), label="dst leaf")
    if a == b or not router.reachable(a, b):
        return
    hops = router.path(a, b, rng=seed)
    for level, index in hops[:-1]:
        direction, candidates = router.next_hops(level, index, b)
        if direction == "deliver":
            continue
        assert candidates
        next_level = level + 1 if direction == "up" else level - 1
        for t in candidates:
            assert router.min_ascent(next_level, t, b) >= 0


@pytest.mark.slow
@settings(max_examples=100, deadline=None)
@given(data=st.data(), instance=rfc_routers())
def test_route_invariants_elevated(data, instance):
    """Same core invariant at an elevated example count (CI depth)."""
    topo, router, seed = instance
    n1 = topo.num_leaves
    a = data.draw(st.integers(0, n1 - 1), label="src leaf")
    b = data.draw(st.integers(0, n1 - 1), label="dst leaf")
    if router.reachable(a, b):
        _assert_route_invariants(topo, router, a, b, seed)
