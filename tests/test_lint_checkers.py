"""Fixture-snippet tests for every ``repro.lint`` checker code.

Each code gets three cases: a snippet that must trip it (positive), a
snippet exercising the same constructs safely (clean), and the
positive snippet waived by a justified ``# repro: allow-<code>``
comment (suppressed).
"""

import textwrap

import pytest

from repro.lint import lint_source
from repro.lint.runner import UNJUSTIFIED_CODE


def findings_for(snippet: str, filename: str = "lib/mod.py"):
    return lint_source(textwrap.dedent(snippet), filename=filename)


def codes_for(snippet: str, filename: str = "lib/mod.py"):
    return [f.code for f in findings_for(snippet, filename)]


# One (positive, clean) snippet pair per code, with an optional third
# element naming the fixture filename (for path-gated checkers).  The
# positive snippet carries exactly one violation, on the line marked
# ``# HIT`` (the suppression test rewrites that marker into an
# allow-comment).
CASES = {
    "RPR001": (
        """\
        import random

        def wire(items):
            random.shuffle(items)  # HIT
            return items
        """,
        """\
        import random

        def wire(items, rng=None):
            rand = rng if isinstance(rng, random.Random) else random.Random(rng)
            rand.shuffle(items)
            return items
        """,
    ),
    "RPR002": (
        """\
        def lookup(cache, topo):
            return cache.get(id(topo))  # HIT
        """,
        """\
        def lookup(cache, digest):
            return cache.get(digest)
        """,
    ),
    "RPR003": (
        """\
        def enumerate_edges(adj: list[set[int]]):
            return [(0, b) for b in adj[0]]  # HIT
        """,
        """\
        def enumerate_edges(adj: list[set[int]]):
            return [(0, b) for b in sorted(adj[0])]
        """,
    ),
    "RPR004": (
        """\
        import time

        def derive_seed(base: int) -> int:
            return base + int(time.time())  # HIT
        """,
        """\
        def derive_seed(base: int, index: int) -> int:
            return base + 1_000_003 * index
        """,
    ),
    "RPR005": (
        """\
        def fan_out(pool, items):
            return list(pool.map(lambda x: x + 1, items))  # HIT
        """,
        """\
        def double(x):
            return x + x

        def fan_out(pool, items):
            return list(pool.map(double, items))
        """,
    ),
    "RPR006": (
        """\
        def accumulate(x, acc=[]):  # HIT
            acc.append(x)
            return acc
        """,
        """\
        def accumulate(x, acc=None):
            acc = [] if acc is None else acc
            acc.append(x)
            return acc
        """,
    ),
    "RPR007": (
        """\
        def count_ports(topo):
            total = 0
            for s in range(topo.num_switches):
                total += topo.up_degree(s)  # HIT
            return total
        """,
        """\
        import numpy as np

        def count_ports(topo):
            return int(np.sum(topo.links_array() >= 0))
        """,
        "lib/accel/hot.py",
    ),
}


def _case(code):
    entry = CASES[code]
    if len(entry) == 3:
        return entry
    positive, clean = entry
    return positive, clean, "lib/mod.py"


@pytest.mark.parametrize("code", sorted(CASES))
class TestEveryChecker:
    def test_positive_hit(self, code):
        positive, _, filename = _case(code)
        assert codes_for(positive, filename) == [code]

    def test_clean_pass(self, code):
        _, clean, filename = _case(code)
        assert codes_for(clean, filename) == []

    def test_suppressed_by_comment(self, code):
        positive, _, filename = _case(code)
        waived = positive.replace(
            "# HIT", f"# repro: allow-{code.lower()} -- fixture waiver"
        )
        assert codes_for(waived, filename) == []

    def test_unjustified_suppression_is_reported(self, code):
        positive, _, filename = _case(code)
        waived = positive.replace("# HIT", f"# repro: allow-{code}")
        assert codes_for(waived, filename) == [UNJUSTIFIED_CODE]


class TestRpr001Variants:
    def test_numpy_legacy_global(self):
        assert codes_for(
            """\
            import numpy as np

            def draw(n):
                return np.random.randint(0, n)
            """
        ) == ["RPR001"]

    def test_bare_default_rng(self):
        assert codes_for(
            """\
            from numpy.random import default_rng

            def make():
                return default_rng()
            """
        ) == ["RPR001"]

    def test_seeded_default_rng_clean(self):
        assert codes_for(
            """\
            from numpy.random import default_rng

            def make(seed):
                return default_rng(seed)
            """
        ) == []

    def test_bare_random_constructor(self):
        assert codes_for(
            """\
            import random

            def make():
                return random.Random()
            """
        ) == ["RPR001"]

    def test_from_import_global_function(self):
        assert codes_for(
            """\
            from random import shuffle

            def wire(items):
                shuffle(items)
            """
        ) == ["RPR001"]

    def test_instance_draws_clean(self):
        assert codes_for(
            """\
            import random

            def wire(items, rand: random.Random):
                rand.shuffle(items)
                return rand.randrange(4)
            """
        ) == []

    def test_literal_none_seed_positional(self):
        # The form that hid the nondeterministic sampling default in
        # repro.graphs.metrics: entropy self-seeding written out loud.
        assert codes_for(
            """\
            import random

            def make():
                return random.Random(None)
            """
        ) == ["RPR001"]

    def test_literal_none_seed_keyword(self):
        assert codes_for(
            """\
            from numpy.random import default_rng

            def make():
                return default_rng(seed=None)
            """
        ) == ["RPR001"]

    def test_seed_or_none_variable_clean(self):
        # Runtime seed-or-None plumbing stays legal; only the literal
        # None is flagged.
        assert codes_for(
            """\
            import random

            def make(rng=None):
                return random.Random(rng)
            """
        ) == []


class TestRpr002Variants:
    def test_subscript_key(self):
        assert codes_for(
            """\
            def memo(table, obj, value):
                table[id(obj)] = value
            """
        ) == ["RPR002"]

    def test_seed_keyword(self):
        assert codes_for(
            """\
            def run(sim, cfg):
                return sim(seed=hash(cfg))
            """
        ) == ["RPR002"]

    def test_sort_key_lambda(self):
        assert codes_for(
            """\
            def order(items):
                return sorted(items, key=hash)  # benign: key not a call
            """
        ) == []

    def test_logging_use_clean(self):
        assert codes_for(
            """\
            def describe(obj):
                return f"object at {id(obj)}"
            """
        ) == []

    def test_shadowed_builtin_clean(self):
        assert codes_for(
            """\
            def lookup(cache, id):
                return cache.get(id)
            """
        ) == []


class TestRpr003Variants:
    def test_for_loop_append(self):
        assert codes_for(
            """\
            def collect(seen: set[int]):
                out = []
                for item in seen:
                    out.append(item)
                return out
            """
        ) == ["RPR003"]

    def test_for_loop_rng_draw(self):
        assert codes_for(
            """\
            def draw(seen: set[int], rand):
                for item in seen:
                    if rand.random() < 0.5:
                        return item
                return None
            """
        ) == ["RPR003"]

    def test_membership_scan_clean(self):
        assert codes_for(
            """\
            def has_pair(avail: set[int], banned: set[int]):
                for a in avail:
                    if a not in banned:
                        return True
                return False
            """
        ) == []

    def test_order_free_reducers_clean(self):
        assert codes_for(
            """\
            def measure(seen: set[int]):
                total = sum(x for x in seen)
                biggest = max(x for x in seen)
                fine = all(x >= 0 for x in seen)
                return total, biggest, fine
            """
        ) == []

    def test_container_of_sets_assignment(self):
        assert codes_for(
            """\
            def edges(rows):
                adj = [set(row) for row in rows]
                return [(a, b) for a in range(len(adj)) for b in adj[a]]
            """
        ) == ["RPR003"]

    def test_sorted_wrapper_clean(self):
        assert codes_for(
            """\
            def edges(rows):
                adj = [set(row) for row in rows]
                return [
                    (a, b) for a in range(len(adj)) for b in sorted(adj[a])
                ]
            """
        ) == []


class TestRpr004Variants:
    def test_exec_path_is_always_scoped(self):
        snippet = """\
        import time

        def stamp():
            return time.time()
        """
        assert codes_for(snippet, filename="src/repro/exec/cache.py") == [
            "RPR004"
        ]
        assert codes_for(snippet, filename="src/repro/graphs/metrics.py") == []

    def test_perf_counter_allowed_on_exec_path(self):
        assert codes_for(
            """\
            import time

            def measure():
                return time.perf_counter()
            """,
            filename="src/repro/exec/executor.py",
        ) == []

    def test_urandom_in_key_function(self):
        assert codes_for(
            """\
            import os

            def cache_key(topo):
                return topo + os.urandom(4).hex()
            """
        ) == ["RPR004"]


class TestRpr005Variants:
    def test_nested_function(self):
        assert codes_for(
            """\
            def run(pool, items):
                def work(x):
                    return x + 1
                return list(pool.map(work, items))
            """
        ) == ["RPR005"]

    def test_partial_over_lambda(self):
        assert codes_for(
            """\
            from functools import partial

            def run(pool, items):
                return pool.submit(partial(lambda x, y: x + y, 1), items)
            """
        ) == ["RPR005"]

    def test_builtin_map_clean(self):
        assert codes_for(
            """\
            def run(items):
                return list(map(lambda x: x + 1, items))
            """
        ) == []

    def test_module_level_function_clean(self):
        assert codes_for(
            """\
            def work(x):
                return x + 1

            def run(pool, items):
                return list(pool.map(work, items))
            """
        ) == []


class TestRpr006Variants:
    def test_keyword_only_default(self):
        assert codes_for(
            """\
            def api(x, *, acc={}):
                return acc
            """
        ) == ["RPR006"]

    def test_private_function_clean(self):
        assert codes_for(
            """\
            def _helper(x, acc=[]):
                acc.append(x)
                return acc
            """
        ) == []

    def test_immutable_defaults_clean(self):
        assert codes_for(
            """\
            def api(x, pair=(), label="", limit=0):
                return x, pair, label, limit
            """
        ) == []


class TestRpr007Variants:
    HOT = "lib/topologies/packed.py"

    def test_bare_scale_name_fires(self):
        assert codes_for(
            """\
            def tally(num_terminals, degree_of):
                total = 0
                for t in range(num_terminals):
                    total |= degree_of(t)
                return total
            """,
            self.HOT,
        ) == ["RPR007"]

    def test_outside_hot_paths_clean(self):
        assert codes_for(
            """\
            def tally(num_terminals, degree_of):
                total = 0
                for t in range(num_terminals):
                    total += degree_of(t)
                return total
            """,
            "lib/analysis/report.py",
        ) == []

    def test_constant_range_clean(self):
        assert codes_for(
            """\
            def tally(degree_of):
                total = 0
                for t in range(8):
                    total += degree_of(t)
                return total
            """,
            self.HOT,
        ) == []

    def test_array_element_writes_clean(self):
        assert codes_for(
            """\
            def fill(num_switches, out, degree_of):
                for s in range(num_switches):
                    out[s] = degree_of(s)
                return out
            """,
            self.HOT,
        ) == []

    def test_shadowed_range_clean(self):
        assert codes_for(
            """\
            def tally(num_terminals, range):
                total = 0
                for t in range(num_terminals):
                    total += t
                return total
            """,
            self.HOT,
        ) == []


class TestFramework:
    def test_parse_error_reported_not_raised(self):
        findings = findings_for("def broken(:\n    pass\n")
        assert [f.code for f in findings] == ["RPR000"]

    def test_findings_sorted_and_located(self):
        findings = findings_for(
            """\
            import random

            def b(items):
                random.shuffle(items)

            def a(x, acc=[]):
                return acc
            """
        )
        assert [f.code for f in findings] == ["RPR001", "RPR006"]
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        assert all(f.file == "lib/mod.py" for f in findings)

    def test_suppression_inside_string_is_ignored(self):
        snippet = """\
        import random

        MESSAGE = "# repro: allow-RPR001 -- not a comment"

        def wire(items):
            random.shuffle(items)
        """
        assert codes_for(snippet) == ["RPR001"]

    def test_multi_code_waiver(self):
        snippet = """\
        def api(cache, obj, acc=[]):  # repro: allow-RPR006, RPR002 -- fixture
            acc.append(cache.get(id(obj)))  # repro: allow-RPR002 -- fixture
            return acc
        """
        assert codes_for(snippet) == []
