"""Graph distance metric tests."""

import pytest

from repro.graphs.metrics import (
    UNREACHABLE,
    average_distance,
    bfs_distances,
    diameter,
    distance_histogram,
    eccentricity,
    leaf_diameter,
    terminal_diameter,
)


def path_graph(n):
    return [
        [j for j in (i - 1, i + 1) if 0 <= j < n] for i in range(n)
    ]


def cycle_graph(n):
    return [[(i - 1) % n, (i + 1) % n] for i in range(n)]


class TestBFS:
    def test_path_distances(self):
        assert bfs_distances(path_graph(5), 0) == [0, 1, 2, 3, 4]

    def test_disconnected_marked(self):
        adj = [[1], [0], []]
        assert bfs_distances(adj, 0) == [0, 1, UNREACHABLE]

    def test_single_vertex(self):
        assert bfs_distances([[]], 0) == [0]


class TestEccentricityDiameter:
    def test_path(self):
        assert eccentricity(path_graph(6), 0) == 5
        assert eccentricity(path_graph(6), 3) == 3
        assert diameter(path_graph(6)) == 5

    def test_cycle(self):
        assert diameter(cycle_graph(8)) == 4
        assert diameter(cycle_graph(7)) == 3

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            eccentricity([[1], [0], []], 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            diameter([])

    def test_sampled_lower_bound(self):
        adj = path_graph(20)
        sampled = diameter(adj, sample=5, rng=3)
        assert sampled <= 19
        assert sampled >= 10  # half the path is always visible


class TestAverageDistance:
    def test_complete_graph(self):
        n = 6
        adj = [[j for j in range(n) if j != i] for i in range(n)]
        assert average_distance(adj) == 1.0

    def test_path3(self):
        # distances: (0,1)=1 (0,2)=2 (1,2)=1 -> mean 4/3
        assert average_distance(path_graph(3)) == pytest.approx(4 / 3)

    def test_trivial(self):
        assert average_distance([[]]) == 0.0


class TestHistogram:
    def test_path3(self):
        hist = distance_histogram(path_graph(3))
        assert hist == {1: 4, 2: 2}  # ordered pairs


class TestLeafDiameter:
    def test_cft_leaf_diameter(self, cft_4_3):
        leaves = [cft_4_3.switch_id(0, i) for i in range(cft_4_3.num_leaves)]
        assert leaf_diameter(cft_4_3.adjacency(), leaves) == 4

    def test_oft_shorter_than_graph_diameter(self, oft_q2_l2):
        # Leaf-to-leaf is 2; the full switch graph has root-leaf pairs
        # at distance 3.
        adj = oft_q2_l2.adjacency()
        leaves = [
            oft_q2_l2.switch_id(0, i) for i in range(oft_q2_l2.num_leaves)
        ]
        assert leaf_diameter(adj, leaves) == 2
        assert diameter(adj) == 3

    def test_terminal_diameter(self, cft_4_3):
        assert terminal_diameter(cft_4_3) == 6 + 2 - 2  # 4 + 2 host hops
