"""Graph distance metric tests."""

import pytest

from repro.graphs.metrics import (
    DEFAULT_SAMPLE_SEED,
    UNREACHABLE,
    average_distance,
    bfs_distances,
    diameter,
    distance_histogram,
    eccentricity,
    leaf_diameter,
    terminal_diameter,
)
from repro.topologies.base import FoldedClos

ENGINES = pytest.mark.parametrize(
    "accel", [True, False], ids=["accel", "reference"]
)


def path_graph(n):
    return [
        [j for j in (i - 1, i + 1) if 0 <= j < n] for i in range(n)
    ]


def cycle_graph(n):
    return [[(i - 1) % n, (i + 1) % n] for i in range(n)]


class TestBFS:
    def test_path_distances(self):
        assert bfs_distances(path_graph(5), 0) == [0, 1, 2, 3, 4]

    def test_disconnected_marked(self):
        adj = [[1], [0], []]
        assert bfs_distances(adj, 0) == [0, 1, UNREACHABLE]

    def test_single_vertex(self):
        assert bfs_distances([[]], 0) == [0]


class TestEccentricityDiameter:
    def test_path(self):
        assert eccentricity(path_graph(6), 0) == 5
        assert eccentricity(path_graph(6), 3) == 3
        assert diameter(path_graph(6)) == 5

    def test_cycle(self):
        assert diameter(cycle_graph(8)) == 4
        assert diameter(cycle_graph(7)) == 3

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            eccentricity([[1], [0], []], 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            diameter([])

    def test_sampled_lower_bound(self):
        adj = path_graph(20)
        sampled = diameter(adj, sample=5, rng=3)
        assert sampled <= 19
        assert sampled >= 10  # half the path is always visible

    @ENGINES
    def test_sampled_default_rng_is_deterministic(self, accel):
        # Regression: sample= with rng omitted used to seed
        # random.Random(None) from OS entropy, so repeated runs could
        # disagree.  The default is now the fixed DEFAULT_SAMPLE_SEED.
        adj = cycle_graph(30)
        first = diameter(adj, sample=4, accel=accel)
        assert all(
            diameter(adj, sample=4, accel=accel) == first for _ in range(3)
        )
        assert first == diameter(
            adj, sample=4, rng=DEFAULT_SAMPLE_SEED, accel=accel
        )
        avg = average_distance(adj, sample=4, accel=accel)
        assert avg == average_distance(
            adj, sample=4, rng=DEFAULT_SAMPLE_SEED, accel=accel
        )


class TestAverageDistance:
    def test_complete_graph(self):
        n = 6
        adj = [[j for j in range(n) if j != i] for i in range(n)]
        assert average_distance(adj) == 1.0

    def test_path3(self):
        # distances: (0,1)=1 (0,2)=2 (1,2)=1 -> mean 4/3
        assert average_distance(path_graph(3)) == pytest.approx(4 / 3)

    def test_trivial(self):
        assert average_distance([[]]) == 0.0


class TestHistogram:
    @ENGINES
    def test_path3_ordered_pair_contract(self, accel):
        # The documented contract: every unordered pair {a, b} counts
        # twice under the default all-sources scan.  The 3-vertex path
        # has unordered distances (0,1)=1 (1,2)=1 (0,2)=2.
        hist = distance_histogram(path_graph(3), accel=accel)
        assert hist == {1: 4, 2: 2}

    @ENGINES
    def test_subset_sources(self, accel):
        hist = distance_histogram(path_graph(3), sources=[0], accel=accel)
        assert hist == {1: 1, 2: 1}


class TestLeafDiameter:
    def test_cft_leaf_diameter(self, cft_4_3):
        leaves = [cft_4_3.switch_id(0, i) for i in range(cft_4_3.num_leaves)]
        assert leaf_diameter(cft_4_3.adjacency(), leaves) == 4

    def test_oft_shorter_than_graph_diameter(self, oft_q2_l2):
        # Leaf-to-leaf is 2; the full switch graph has root-leaf pairs
        # at distance 3.
        adj = oft_q2_l2.adjacency()
        leaves = [
            oft_q2_l2.switch_id(0, i) for i in range(oft_q2_l2.num_leaves)
        ]
        assert leaf_diameter(adj, leaves) == 2
        assert diameter(adj) == 3

    def test_terminal_diameter(self, cft_4_3):
        assert terminal_diameter(cft_4_3) == 6 + 2 - 2  # 4 + 2 host hops


class TestDegenerateNetworks:
    """ValueError paths and the single-switch special case, both engines."""

    @ENGINES
    def test_eccentricity_disconnected_raises(self, accel):
        adj = [[1], [0], [3], [2]]
        with pytest.raises(ValueError, match="graph is disconnected"):
            eccentricity(adj, 0, accel=accel)

    @ENGINES
    def test_leaf_diameter_disconnected_leaves_raise(self, accel):
        adj = [[1], [0], [3], [2]]
        with pytest.raises(ValueError, match="some leaf pair is disconnected"):
            leaf_diameter(adj, [0, 2], accel=accel)

    @ENGINES
    def test_leaf_diameter_ignores_disconnected_non_leaves(self, accel):
        # Only leaf pairs matter: a severed non-leaf fragment is fine.
        adj = [[1], [0], [3], [2]]
        assert leaf_diameter(adj, [0, 1], accel=accel) == 1

    @ENGINES
    def test_single_switch_leaf_diameter(self, accel):
        assert leaf_diameter([[]], [0], accel=accel) == 0

    @ENGINES
    def test_single_switch_eccentricity(self, accel):
        assert eccentricity([[]], 0, accel=accel) == 0

    @ENGINES
    def test_single_switch_terminal_diameter(self, accel):
        # host -> switch -> host: the == 2 special case bypasses
        # diameter() (which would see a 0-link graph).
        solo = FoldedClos([1], [], hosts_per_leaf=2, radix=4)
        assert terminal_diameter(solo, accel=accel) == 2
