"""Smoke test: the quickstart example runs end to end.

The heavier examples (expansion, failure drill, shoot-out, planner)
take tens of seconds each and are exercised manually / in CI nightly;
the quickstart is the one users copy first, so it must stay green.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestQuickstart:
    def test_runs_clean(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        out = result.stdout
        assert "generated RFC" in out
        assert "flow-level max-min saturation" in out

    def test_all_examples_compile(self):
        for script in EXAMPLES.glob("*.py"):
            compile(script.read_text(), str(script), "exec")
