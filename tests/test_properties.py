"""Hypothesis property-based tests on core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ancestors import (
    has_updown_routing_of,
    stages_of,
    updown_coverage,
    updown_reachable_fraction,
)
from repro.core.rfc import radix_regular_rfc
from repro.core.theory import rfc_max_leaves, threshold_radix, x_for_radix
from repro.faults.removal import UnionFind
from repro.graphs.connectivity import connected_components
from repro.routing.updown import UpDownRouter
from repro.simulation.flowlevel import max_min_rates

# Feasible (radix, n1, levels) triples for quick RFC generation.
rfc_params = st.tuples(
    st.sampled_from([4, 6, 8]),
    st.integers(min_value=4, max_value=16).map(lambda k: 2 * k),
    st.sampled_from([2, 3]),
    st.integers(min_value=0, max_value=10_000),
).filter(lambda t: t[0] // 2 <= t[1] // 2)


@settings(max_examples=20, deadline=None)
@given(params=rfc_params)
def test_rfc_always_radix_regular(params):
    radix, n1, levels, seed = params
    topo = radix_regular_rfc(radix, n1, levels, rng=seed)
    assert topo.is_radix_regular()
    topo.validate()


@settings(max_examples=20, deadline=None)
@given(params=rfc_params)
def test_coverage_is_symmetric(params):
    """Leaf b reachable from a iff a reachable from b (up/down paths
    are reversible)."""
    radix, n1, levels, seed = params
    topo = radix_regular_rfc(radix, n1, levels, rng=seed)
    cover = updown_coverage(topo.level_sizes, stages_of(topo))
    for a in range(n1):
        for b in range(n1):
            assert ((cover[a] >> b) & 1) == ((cover[b] >> a) & 1)


@settings(max_examples=15, deadline=None)
@given(params=rfc_params)
def test_routability_equals_full_fraction(params):
    radix, n1, levels, seed = params
    topo = radix_regular_rfc(radix, n1, levels, rng=seed)
    frac = updown_reachable_fraction(topo.level_sizes, stages_of(topo))
    assert (frac == 1.0) == has_updown_routing_of(topo)


@settings(max_examples=10, deadline=None)
@given(params=rfc_params, data=st.data())
def test_router_paths_match_min_length(params, data):
    radix, n1, levels, seed = params
    topo = radix_regular_rfc(radix, n1, levels, rng=seed)
    if not has_updown_routing_of(topo):
        return
    router = UpDownRouter.for_topology(topo)
    a = data.draw(st.integers(0, n1 - 1))
    b = data.draw(st.integers(0, n1 - 1))
    path = router.path(a, b, rng=random.Random(seed))
    assert len(path) - 1 == router.path_length(a, b)
    assert len(path) - 1 <= 2 * (levels - 1)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 9), min_size=1, max_size=4),
        min_size=1,
        max_size=25,
    )
)
def test_max_min_is_feasible_and_positive(flows):
    routes = [[f"l{x}" for x in route] for route in flows]
    rates = max_min_rates(routes)
    assert all(r > 0 for r in rates)
    usage: dict[str, float] = {}
    for route, rate in zip(routes, rates):
        for link in route:
            usage[link] = usage.get(link, 0.0) + rate
    assert all(u <= 1.0 + 1e-9 for u in usage.values())


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    edges=st.lists(
        st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60
    ),
)
def test_unionfind_matches_bfs_components(n, edges):
    edges = [(a % n, b % n) for a, b in edges if a % n != b % n]
    uf = UnionFind(n)
    adj = [[] for _ in range(n)]
    for a, b in edges:
        uf.union(a, b)
        adj[a].append(b)
        adj[b].append(a)
    comps = connected_components(adj)
    assert uf.components == len(comps)
    for comp in comps:
        assert uf.all_connected(comp)


@settings(max_examples=40, deadline=None)
@given(
    n1=st.integers(min_value=4, max_value=5_000).map(lambda k: 2 * k),
    levels=st.sampled_from([2, 3, 4]),
)
def test_threshold_x_roundtrip(n1, levels):
    radius = threshold_radix(n1, levels, x=0.0)
    assert abs(x_for_radix(radius, n1, levels)) < 1e-6


@settings(max_examples=20, deadline=None)
@given(
    radix=st.integers(min_value=3, max_value=32).map(lambda k: 2 * k),
    levels=st.sampled_from([2, 3, 4]),
)
def test_max_leaves_respects_threshold(radix, levels):
    """The returned size is ~at the threshold: x(cap) >= 0 >= x(cap+2)
    within rounding slack."""
    cap = rfc_max_leaves(radix, levels)
    if cap < 4:
        return
    x_here = x_for_radix(radix, cap, levels)
    x_next = x_for_radix(radix, cap + 4, levels)
    assert x_next < x_here
