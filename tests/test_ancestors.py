"""Common-ancestor / up-down routability analysis tests."""

import pytest

from repro.core.ancestors import (
    common_ancestors_of,
    descendant_leaf_sets,
    has_updown_routing,
    has_updown_routing_of,
    root_ancestor_sets,
    stages_of,
    updown_coverage,
    updown_reachable_fraction,
)
from repro.topologies.base import FoldedClos


def tiny():
    """4 leaves, 2 roots; leaves 0,1 -> root 0; leaves 2,3 -> root 1."""
    return FoldedClos(
        [4, 2],
        [[[0], [0], [1], [1]]],
        hosts_per_leaf=1,
        radix=4,
        name="split",
    )


def tiny_joined():
    """Same but leaf 1 reaches both roots: still not all-pairs."""
    return FoldedClos(
        [4, 2],
        [[[0], [0, 1], [1], [1]]],
        hosts_per_leaf=1,
        radix=4,
    )


class TestDescendants:
    def test_singletons_at_leaves(self):
        topo = tiny()
        masks = descendant_leaf_sets(topo.level_sizes, stages_of(topo))
        assert masks[0] == [1, 2, 4, 8]
        assert masks[1] == [0b0011, 0b1100]

    def test_cft_roots_cover_everything(self, cft_4_3):
        masks = descendant_leaf_sets(cft_4_3.level_sizes, stages_of(cft_4_3))
        full = (1 << cft_4_3.num_leaves) - 1
        assert all(m == full for m in masks[-1])


class TestCoverage:
    def test_split_network_not_routable(self):
        topo = tiny()
        assert not has_updown_routing_of(topo)
        cover = updown_coverage(topo.level_sizes, stages_of(topo))
        assert cover[0] == 0b0011
        assert cover[3] == 0b1100

    def test_fraction_partial(self):
        topo = tiny()
        # Each leaf reaches 1 other of 3 -> 1/3.
        frac = updown_reachable_fraction(topo.level_sizes, stages_of(topo))
        assert frac == pytest.approx(1 / 3)

    def test_fraction_full(self, cft_4_3):
        assert updown_reachable_fraction(
            cft_4_3.level_sizes, stages_of(cft_4_3)
        ) == 1.0

    def test_joined_still_not_routable(self):
        topo = tiny_joined()
        assert not has_updown_routing(topo.level_sizes, stages_of(topo))
        frac = updown_reachable_fraction(topo.level_sizes, stages_of(topo))
        assert 1 / 3 < frac < 1.0

    def test_cft_routable(self, cft_4_3, cft_8_3):
        assert has_updown_routing_of(cft_4_3)
        assert has_updown_routing_of(cft_8_3)

    def test_rfc_fixture_routable(self, rfc_small, rfc_medium):
        assert has_updown_routing_of(rfc_small)
        assert has_updown_routing_of(rfc_medium)

    def test_single_leaf_trivially_routable(self):
        topo = FoldedClos([2, 1], [[[0], [0]]], 1, 4)
        assert has_updown_routing_of(topo)


class TestRootAncestors:
    def test_split(self):
        topo = tiny()
        masks = root_ancestor_sets(topo.level_sizes, stages_of(topo))
        assert masks == [0b01, 0b01, 0b10, 0b10]

    def test_cft_every_leaf_reaches_every_root(self, cft_4_3):
        masks = root_ancestor_sets(cft_4_3.level_sizes, stages_of(cft_4_3))
        full = (1 << cft_4_3.level_sizes[-1]) - 1
        assert all(m == full for m in masks)


class TestCommonAncestorsOf:
    def test_same_leaf(self, cft_4_3):
        assert common_ancestors_of(cft_4_3, 2, 2) == (0, [2])

    def test_siblings_meet_low(self, cft_4_3):
        # Leaves 0 and 1 share a level-2 switch in the CFT (same pod).
        level, ancestors = common_ancestors_of(cft_4_3, 0, 1)
        assert level == 1
        assert ancestors

    def test_cross_pod_meets_at_root(self, cft_4_3):
        # CFT(4,3) has 8 leaves; 0 and 7 sit in different pods.
        level, ancestors = common_ancestors_of(cft_4_3, 0, 7)
        assert level == cft_4_3.num_levels - 1

    def test_no_ancestor_raises(self):
        with pytest.raises(ValueError):
            common_ancestors_of(tiny(), 0, 3)

    def test_matches_routability(self, rfc_small):
        n1 = rfc_small.num_leaves
        for a in range(0, n1, 3):
            for b in range(1, n1, 5):
                level, ancestors = common_ancestors_of(rfc_small, a, b)
                assert ancestors
                assert 0 <= level < rfc_small.num_levels
