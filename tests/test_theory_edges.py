"""Degenerate-size behaviour of the closed-form sizing functions."""

import pytest

from repro.core.theory import (
    cft_diameter,
    oft_diameter,
    rfc_diameter,
    rfc_max_leaves,
    rrn_diameter,
)
from repro.topologies.rrn import rrn_switches_for_diameter


class TestTinyTargets:
    def test_single_switch_cft(self):
        # Up to R terminals fit on one switch: diameter 0.
        assert cft_diameter(36, 30) == 0

    def test_tiny_rfc_uses_two_levels(self):
        assert rfc_diameter(36, 30) == 2

    def test_oft_min_two_levels(self):
        assert oft_diameter(36, 30) == 2

    def test_rrn_diameter_one_for_tiny(self):
        assert rrn_diameter(36, 20) in (1, 2)


class TestInfeasibleTargets:
    def test_rfc_raises_beyond_reach(self):
        with pytest.raises(ValueError):
            rfc_diameter(4, 10**30)

    def test_cft_raises_beyond_reach(self):
        with pytest.raises(ValueError):
            cft_diameter(4, 10**30)


class TestMaxLeavesEdges:
    def test_tiny_radix_returns_small_or_zero(self):
        assert rfc_max_leaves(4, 2) >= 0

    def test_growth_is_superlinear_in_radix(self):
        a = rfc_max_leaves(12, 3)
        b = rfc_max_leaves(24, 3)
        assert b > 4 * a  # Delta^4 scaling


class TestRrnSizing:
    def test_small_degree_floor(self):
        assert rrn_switches_for_diameter(2, 4) == 3

    def test_large_diameter_caps(self):
        # Guarded against overflow: returns a finite bound.
        n = rrn_switches_for_diameter(16, 12)
        assert n > 10**6
