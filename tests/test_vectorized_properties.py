"""Hypothesis properties specific to the vectorized cycle engine.

Three families, complementing the example-based conformance matrix in
``test_fastpath_differential.py``:

* **Packet conservation, cycle by cycle** -- an observer tallies
  inject/eject/drop callbacks as they fire and demands the in-flight
  count never goes negative and callback times never run backwards;
  at run end the full balance must close: every generated packet is
  delivered, still queued somewhere in the network, or dropped as
  unroutable.
* **Arbitration stability under candidate permutation** -- permuting
  the per-switch input-unit order changes which packets the shared
  RNG stream favors, so it changes results; but it must change them
  *identically* in every engine.  This also forces the vectorized
  engine off its sorted-units fast path (the rotating arbiter then
  has to really sort), proving the fallback.
* **Exception parity** -- malformed configurations raise the same
  validation errors regardless of engine, and a traffic pattern that
  blows up mid-run propagates the same exception at the same
  generation point through the reference and vectorized engines.

Both vectorized regimes (incremental masks only, and the batched
viability phase forced on via ``_BATCH_MIN_UNITS = 0``) are exercised.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.accel.sim as accel_sim
from repro.core.rfc import radix_regular_rfc
from repro.obs.hooks import SimObserver
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.traffic import TrafficPattern, make_traffic

vector_configs = st.fixed_dictionaries(
    {
        "radix": st.sampled_from([4, 6]),
        "n1": st.sampled_from([8, 12]),
        "load": st.floats(min_value=0.1, max_value=1.0),
        "vcs": st.integers(min_value=1, max_value=4),
        "buffers": st.integers(min_value=1, max_value=3),
        "phits": st.sampled_from([1, 4, 16]),
        "traffic": st.sampled_from(
            ["uniform", "random-pairing", "fixed-random"]
        ),
        "seed": st.integers(min_value=0, max_value=1_000),
        "batched": st.booleans(),
    }
)


def build_sim(config, engine, observer=None):
    topo = radix_regular_rfc(
        config["radix"], config["n1"], 2, rng=config["seed"]
    )
    params = SimulationParams(
        measure_cycles=150,
        warmup_cycles=50,
        virtual_channels=config["vcs"],
        buffer_packets=config["buffers"],
        packet_phits=config["phits"],
        seed=config["seed"],
        engine=engine,
    )
    traffic = make_traffic(
        config["traffic"], topo.num_terminals, rng=config["seed"] + 1
    )
    return Simulator(topo, traffic, config["load"], params, observer=observer)


def run_regime(sim, batched):
    """Run ``sim`` with the batched viability phase forced on or off."""
    saved = accel_sim._BATCH_MIN_UNITS
    accel_sim._BATCH_MIN_UNITS = 0 if batched else 1 << 40
    try:
        return sim.run()
    finally:
        accel_sim._BATCH_MIN_UNITS = saved


class ConservationObserver(SimObserver):
    """Asserts the in-flight balance at every callback."""

    def __init__(self):
        self.injected = 0
        self.ejected = 0
        self.dropped = 0
        self.last_time = 0

    def _tick(self, time):
        assert time >= self.last_time, "callback time ran backwards"
        self.last_time = time
        in_flight = self.injected - self.ejected
        assert in_flight >= 0, "more ejections than injections"

    def on_inject(self, time, packet, queue_len):
        self.injected += 1
        self._tick(time)

    def on_eject(self, time, packet, latency, phits):
        self.ejected += 1
        self._tick(time)

    def on_drop(self, time, terminal, packet):
        self.dropped += 1
        self._tick(time)


def queued_packets(sim):
    """Packets still sitting in any (channel, vc) queue post-run."""
    return sum(
        len(queue)
        for queues in sim.ch_queues
        if queues is not None  # eject channels keep no queue
        for queue in queues
    )


@settings(max_examples=25, deadline=None)
@given(config=vector_configs)
def test_packet_conservation_every_cycle(config):
    obs = ConservationObserver()
    sim = build_sim(config, "vectorized", observer=obs)
    result = run_regime(sim, config["batched"])
    # Callback tallies agree with the aggregate counters...
    assert obs.ejected == result.delivered_packets
    assert obs.dropped == sim.unroutable_packets
    # ...and the end-of-run balance closes exactly: generated packets
    # are delivered, still in the network, or dropped.
    assert result.generated_packets == (
        result.delivered_packets + queued_packets(sim) + sim.unroutable_packets
    )


@settings(max_examples=15, deadline=None)
@given(
    config=vector_configs,
    perm_seed=st.integers(min_value=0, max_value=1_000),
    arbiter=st.sampled_from(["random", "rotating"]),
)
def test_arbitration_stable_under_unit_permutation(
    config, perm_seed, arbiter
):
    results = []
    for engine in ("reference", "vectorized"):
        sim = build_sim(config, engine)
        sim.params = sim.params.scaled(arbiter=arbiter)
        # Shuffle each switch's input-unit scan order the same way in
        # both engines; results may differ from the unshuffled run but
        # must stay identical across engines.
        shuffler = random.Random(perm_seed)
        for row in sim.in_units:
            shuffler.shuffle(row)
        results.append(
            (run_regime(sim, config["batched"]), sim.ch_busy_cycles)
        )
    assert results[0] == results[1]


@settings(max_examples=25, deadline=None)
@given(
    engine=st.sampled_from(["reference", "fast", "vectorized"]),
    field=st.sampled_from(
        [
            {"measure_cycles": 0},
            {"warmup_cycles": -1},
            {"virtual_channels": 0},
            {"buffer_packets": 0},
            {"packet_phits": 0},
            {"link_latency": 0},
            {"arbitration_iterations": 0},
            {"up_selection": "greedy"},
            {"arbiter": "fifo"},
            {"valiant": True, "virtual_channels": 1},
            {"engine": "turbo"},
        ]
    ),
)
def test_malformed_config_parity(engine, field):
    """Validation failures are engine-independent: same exception
    type and message whatever engine the config also selects."""
    overrides = dict(field)
    if "engine" not in overrides:
        overrides["engine"] = engine
    with pytest.raises(ValueError) as exc_info:
        SimulationParams(**overrides)
    reference_msg = str(exc_info.value)
    overrides.pop("engine")
    if "engine" in field:
        return  # the engine string itself was the malformed field
    with pytest.raises(ValueError) as exc_info2:
        SimulationParams(engine="reference", **overrides)
    assert str(exc_info2.value) == reference_msg


class ExplodingTraffic(TrafficPattern):
    """Uniform-ish traffic that raises after a fixed number of draws."""

    name = "exploding"

    def __init__(self, num_terminals, fuse):
        super().__init__(num_terminals)
        self.fuse = fuse
        self.calls = 0

    def destination(self, source, rng):
        self.calls += 1
        if self.calls > self.fuse:
            raise RuntimeError(f"traffic exploded after {self.fuse} draws")
        dest = rng.randrange(self.num_terminals - 1)
        return dest if dest < source else dest + 1


@settings(max_examples=15, deadline=None)
@given(
    fuse=st.integers(min_value=0, max_value=120),
    seed=st.integers(min_value=0, max_value=1_000),
    batched=st.booleans(),
)
def test_midrun_exception_parity(fuse, seed, batched):
    """A traffic pattern that blows up mid-run must surface the same
    exception from every engine, at the same generation point."""
    outcomes = []
    for engine in ("reference", "vectorized"):
        topo = radix_regular_rfc(4, 8, 2, rng=seed)
        params = SimulationParams(
            measure_cycles=150, warmup_cycles=0, seed=seed, engine=engine
        )
        traffic = ExplodingTraffic(topo.num_terminals, fuse)
        sim = Simulator(topo, traffic, 0.5, params)
        try:
            run_regime(sim, batched)
            outcomes.append(("completed", traffic.calls))
        except RuntimeError as exc:
            outcomes.append(
                (str(exc), traffic.calls, sim._stats.generated_packets)
            )
    assert outcomes[0] == outcomes[1]
