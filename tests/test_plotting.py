"""ASCII plotting tests + rotating arbiter + 4-level OFT coverage."""

import pytest

from repro.experiments.common import Table
from repro.experiments.plotting import ascii_bars, ascii_plot


def sample_table():
    table = Table("demo", ["x", "a", "b"])
    for x in (1, 10, 100, 1000):
        table.add(x, x * 2, None if x == 10 else x / 2)
    return table


class TestAsciiPlot:
    def test_renders_series_marks(self):
        text = ascii_plot(sample_table(), "x", ["a", "b"], log_x=True)
        assert "o = a" in text and "x = b" in text
        assert "demo" in text
        assert "o" in text

    def test_skips_missing_values(self):
        text = ascii_plot(sample_table(), "x", ["b"])
        assert text.count("o") >= 3  # 3 valid points + legend char

    def test_log_y(self):
        text = ascii_plot(sample_table(), "x", ["a"], log_y=True)
        assert "demo" in text

    def test_empty_raises(self):
        table = Table("empty", ["x", "y"])
        with pytest.raises(ValueError):
            ascii_plot(table, "x", ["y"])

    def test_plot_fig6_runs(self):
        from repro.experiments import run_experiment

        table = run_experiment("fig6", quick=True)
        text = ascii_plot(
            table, "radix", ["CFT l=3", "RFC l=3", "OFT l=3"], log_y=True
        )
        assert "CFT l=3" in text


class TestAsciiBars:
    def test_bars_scaled(self):
        table = Table("bars", ["name", "value"])
        table.add("small", 1.0)
        table.add("big", 10.0)
        text = ascii_bars(table, "name", "value", width=20)
        lines = text.splitlines()
        assert lines[2].count("#") > lines[1].count("#")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_bars(Table("x", ["a", "b"]), "a", "b")


class TestRotatingArbiter:
    def test_validation(self):
        from repro.simulation.config import SimulationParams

        with pytest.raises(ValueError):
            SimulationParams(arbiter="priority")
        assert SimulationParams(arbiter="rotating").arbiter == "rotating"

    def test_runs_and_delivers(self, cft_8_3):
        from repro.simulation.config import SimulationParams
        from repro.simulation.engine import simulate
        from repro.simulation.traffic import make_traffic

        params = SimulationParams(
            measure_cycles=500, warmup_cycles=150, seed=1,
            arbiter="rotating",
        )
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=2)
        result = simulate(cft_8_3, traffic, 0.5, params)
        assert result.accepted_load == pytest.approx(0.5, abs=0.08)

    def test_comparable_to_random(self, cft_8_3):
        from repro.simulation.config import SimulationParams
        from repro.simulation.engine import simulate
        from repro.simulation.traffic import make_traffic

        results = {}
        for arbiter in ("random", "rotating"):
            params = SimulationParams(
                measure_cycles=600, warmup_cycles=200, seed=3,
                arbiter=arbiter,
            )
            traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=4)
            results[arbiter] = simulate(
                cft_8_3, traffic, 1.0, params
            ).accepted_load
        assert abs(results["random"] - results["rotating"]) < 0.15


class TestOftFourLevels:
    def test_structure(self):
        from repro.core.ancestors import has_updown_routing_of
        from repro.topologies.oft import (
            oft_terminals,
            orthogonal_fat_tree,
        )

        topo = orthogonal_fat_tree(2, 4)
        assert topo.is_radix_regular()
        assert topo.num_terminals == oft_terminals(2, 4)
        assert has_updown_routing_of(topo)

    def test_diameter_bound(self):
        from repro.graphs.metrics import leaf_diameter
        from repro.topologies.oft import orthogonal_fat_tree

        topo = orthogonal_fat_tree(2, 4)
        leaves = [topo.switch_id(0, i) for i in range(topo.num_leaves)]
        assert leaf_diameter(topo.adjacency(), leaves) <= 6
