"""Bisection bounds and estimator tests."""

import math

import pytest

from repro.graphs.bisection import (
    bollobas_isoperimetric,
    cut_width,
    estimate_bisection_width,
    rfc_bisection_lower_bound,
    rfc_normalized_bisection,
    rrn_bisection_lower_bound,
    rrn_normalized_bisection,
)


class TestAnalyticBounds:
    def test_bollobas_formula(self):
        assert bollobas_isoperimetric(26) == pytest.approx(
            13 - math.sqrt(26 * math.log(2))
        )

    def test_paper_normalized_values(self):
        """Section 4.2: RRN ~0.88, 2-level RFC ~0.80, 3-level ~0.86."""
        # RRN with R=36 split: delta=26, 10 hosts.
        assert rrn_normalized_bisection(26, 10) == pytest.approx(0.88, abs=0.01)
        assert rfc_normalized_bisection(36, 2) == pytest.approx(0.80, abs=0.01)
        assert rfc_normalized_bisection(36, 3) == pytest.approx(0.86, abs=0.01)

    def test_normalized_increases_with_levels(self):
        values = [rfc_normalized_bisection(36, l) for l in (2, 3, 4, 5)]
        assert values == sorted(values)
        assert all(v < 1.0 for v in values)

    def test_rfc_lower_bound_positive_at_paper_scale(self):
        assert rfc_bisection_lower_bound(11_254, 36, 3) > 0

    def test_rrn_lower_bound_scales_linearly(self):
        one = rrn_bisection_lower_bound(1_000, 16)
        two = rrn_bisection_lower_bound(2_000, 16)
        assert two == pytest.approx(2 * one)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bollobas_isoperimetric(-1)
        with pytest.raises(ValueError):
            rfc_bisection_lower_bound(8, 4, 1)
        with pytest.raises(ValueError):
            rrn_normalized_bisection(8, 0)


class TestCutWidth:
    def test_known_cut(self):
        # Path 0-1-2-3 cut between 1 and 2.
        adj = [[1], [0, 2], [1, 3], [2]]
        assert cut_width(adj, [True, True, False, False]) == 1
        assert cut_width(adj, [True, False, True, False]) == 3


class TestEstimator:
    def test_two_cliques_one_bridge(self):
        # Two K4s joined by a single edge: bisection width is 1.
        adj = [[] for _ in range(8)]
        for group in (range(4), range(4, 8)):
            for a in group:
                for b in group:
                    if a != b:
                        adj[a].append(b)
        adj[0].append(4)
        adj[4].append(0)
        assert estimate_bisection_width(adj, restarts=12, rng=1) == 1

    def test_complete_bipartite(self):
        # K_{3,3}: any balanced cut crosses at least 4 edges... the
        # minimum balanced cut of K33 puts {a1,a2,b1} vs {a3,b2,b3}:
        # crossing = a1b2,a1b3,a2b2,a2b3,a3b1 = 5.
        adj = [[3, 4, 5]] * 3 + [[0, 1, 2]] * 3
        est = estimate_bisection_width(adj, restarts=10, rng=2)
        assert est == 5

    def test_trivial_graphs(self):
        assert estimate_bisection_width([[]], rng=0) == 0
        assert estimate_bisection_width([], rng=0) == 0

    def test_estimate_tracks_cheeger_for_rfc(self, rfc_medium):
        # The local-search upper bound should land in the right
        # ballpark of the analytic (asymptotic) lower bound; at this
        # tiny size the Bollobas constant overshoots, so only a loose
        # band is meaningful.
        est = estimate_bisection_width(rfc_medium.adjacency(), rng=3)
        bound = rfc_bisection_lower_bound(
            rfc_medium.num_leaves, rfc_medium.radix, rfc_medium.num_levels
        )
        assert bound * 0.5 <= est <= rfc_medium.num_links
