"""RFC generator tests."""

import pytest

from repro.core.ancestors import has_updown_routing_of
from repro.core.rfc import (
    UpDownNotFound,
    radix_regular_rfc,
    random_folded_clos,
    rfc_level_sizes,
    rfc_switches,
    rfc_wires,
    rfc_with_updown,
)
from repro.topologies.base import NetworkError


class TestRadixRegularRFC:
    def test_structure(self):
        topo = radix_regular_rfc(8, 16, 3, rng=1)
        assert topo.level_sizes == [16, 16, 8]
        assert topo.num_terminals == 64
        assert topo.is_radix_regular()
        topo.validate()

    def test_deterministic(self):
        a = radix_regular_rfc(8, 16, 3, rng=4)
        b = radix_regular_rfc(8, 16, 3, rng=4)
        assert a.links() == b.links()

    def test_seeds_differ(self):
        a = radix_regular_rfc(8, 16, 3, rng=4)
        b = radix_regular_rfc(8, 16, 3, rng=5)
        assert a.links() != b.links()

    def test_two_levels(self):
        topo = radix_regular_rfc(8, 16, 2, rng=0)
        assert topo.level_sizes == [16, 8]
        assert topo.is_radix_regular()

    def test_rejects_odd_radix(self):
        with pytest.raises(NetworkError):
            radix_regular_rfc(7, 16, 3)

    def test_rejects_odd_leaves(self):
        with pytest.raises(NetworkError):
            radix_regular_rfc(8, 15, 3)

    def test_rejects_single_level(self):
        with pytest.raises(NetworkError):
            radix_regular_rfc(8, 16, 1)

    def test_rejects_radix_larger_than_top(self):
        # R/2 up-links per top-1 switch need N_l >= R/2.
        with pytest.raises(NetworkError):
            radix_regular_rfc(16, 8, 3)

    def test_wiring_is_random_but_biregular(self):
        topo = radix_regular_rfc(12, 24, 3, rng=2)
        for level in range(2):
            for s in range(topo.level_sizes[level]):
                assert topo.up_degree(level, s) == 6
        for s in range(topo.level_sizes[2]):
            assert len(topo.down_neighbors(2, s)) == 12


class TestGeneralRFC:
    def test_custom_levels(self):
        topo = random_folded_clos(
            [8, 8, 4], up_degrees=[2, 2], hosts_per_leaf=3, rng=0
        )
        assert topo.level_sizes == [8, 8, 4]
        assert topo.hosts_per_leaf == 3
        assert all(topo.up_degree(0, s) == 2 for s in range(8))
        assert all(len(topo.down_neighbors(2, s)) == 4 for s in range(4))

    def test_rejects_uneven_split(self):
        with pytest.raises(NetworkError):
            random_folded_clos([8, 3], up_degrees=[2], hosts_per_leaf=1)

    def test_rejects_wrong_degree_count(self):
        with pytest.raises(NetworkError):
            random_folded_clos([8, 8, 4], up_degrees=[2], hosts_per_leaf=1)

    def test_infers_radix(self):
        topo = random_folded_clos([8, 4], up_degrees=[2], hosts_per_leaf=2)
        assert topo.radix == 4  # root: 4 down-links


class TestWithUpdown:
    def test_returns_routable(self):
        topo, attempts = rfc_with_updown(8, 16, 3, rng=3)
        assert attempts >= 1
        assert has_updown_routing_of(topo)

    def test_comfortably_above_threshold_first_try(self):
        # Radix far above threshold: the very first sample works.
        _, attempts = rfc_with_updown(12, 16, 3, rng=0)
        assert attempts == 1

    def test_below_threshold_raises(self):
        # Radix 4 on 64 leaves, 2 levels: threshold ~ 2*sqrt(64 ln 64)
        # ~ 33; radix 4 has essentially zero routable probability.
        with pytest.raises(UpDownNotFound):
            rfc_with_updown(4, 64, 2, rng=0, max_attempts=5)

    def test_expected_attempts_near_threshold(self):
        """At the threshold, mean attempts ~ e (paper: 'every three')."""
        total = 0
        runs = 15
        for seed in range(runs):
            # N1=64, l=2: finite-size transition near radix 24.
            _, attempts = rfc_with_updown(
                24, 64, 2, rng=seed, max_attempts=64
            )
            total += attempts
        mean = total / runs
        assert 1.0 <= mean <= 8.0  # loose band around e


class TestAccounting:
    def test_level_sizes(self):
        assert rfc_level_sizes(10, 3) == [10, 10, 5]
        with pytest.raises(NetworkError):
            rfc_level_sizes(9, 3)

    def test_switch_and_wire_counts_match_instances(self):
        topo = radix_regular_rfc(8, 16, 3, rng=0)
        assert rfc_switches(16, 3) == topo.num_switches
        assert rfc_wires(16, 8, 3) == topo.num_links

    def test_paper_200k_counts(self):
        assert rfc_switches(11_254, 3) == 28_135
        assert rfc_wires(11_254, 36, 3) == 405_144
