"""Cycle-level simulator behaviour tests (small, fast configurations)."""

import pytest

from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator, load_sweep, simulate
from repro.simulation.traffic import UniformTraffic, make_traffic

FAST = SimulationParams(measure_cycles=600, warmup_cycles=200, seed=3)


class TestBasicDelivery:
    def test_low_load_accepted_matches_offered(self, cft_8_3):
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=1)
        result = simulate(cft_8_3, traffic, 0.2, FAST)
        assert result.accepted_load == pytest.approx(0.2, abs=0.05)

    def test_low_load_latency_near_contention_free(self, cft_8_3):
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=1)
        result = simulate(cft_8_3, traffic, 0.05, FAST)
        # ~4 switch hops + ejection, 16-phit serialization: the
        # contention-free baseline sits around 20 cycles; allow queue
        # noise but catch gross timing bugs.
        assert 16 <= result.avg_latency <= 45
        assert 2 <= result.avg_hops <= 4

    def test_saturation_below_full(self, cft_8_3):
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=1)
        result = simulate(cft_8_3, traffic, 1.0, FAST)
        assert 0.5 <= result.accepted_load <= 1.0

    def test_accepted_monotone_at_low_loads(self, cft_8_3):
        results = load_sweep(cft_8_3, "uniform", [0.1, 0.3, 0.5], FAST)
        accepted = [r.accepted_load for r in results]
        assert accepted[0] < accepted[1] < accepted[2]

    def test_conservation(self, rfc_medium):
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=2)
        sim = Simulator(rfc_medium, traffic, 0.5, FAST)
        result = sim.run()
        assert result.delivered_packets <= result.generated_packets
        assert sim.unroutable_packets == 0

    def test_same_leaf_pairs_deliver(self, cft_8_3):
        class SameLeaf(UniformTraffic):
            name = "same-leaf"

            def destination(self, source, rng):
                # Partner within the same leaf (hosts_per_leaf = 4).
                return source ^ 1

        traffic = SameLeaf(cft_8_3.num_terminals)
        result = simulate(cft_8_3, traffic, 0.3, FAST)
        assert result.measured_packets > 0
        assert result.avg_hops == 0  # never leaves the leaf switch

    def test_deterministic_by_seed(self, rfc_small):
        runs = []
        for _ in range(2):
            traffic = make_traffic("uniform", rfc_small.num_terminals, rng=4)
            runs.append(simulate(rfc_small, traffic, 0.4, FAST))
        assert runs[0].accepted_load == runs[1].accepted_load
        assert runs[0].avg_latency == runs[1].avg_latency

    def test_seed_changes_outcome(self, rfc_small):
        results = []
        for seed in (1, 2):
            traffic = make_traffic("uniform", rfc_small.num_terminals, rng=4)
            results.append(
                simulate(rfc_small, traffic, 0.4, FAST.scaled(seed=seed))
            )
        assert (
            results[0].measured_latency_sum
            if hasattr(results[0], "measured_latency_sum")
            else results[0].avg_latency
        ) != results[1].avg_latency


class TestValidation:
    def test_rejects_terminal_mismatch(self, cft_8_3):
        with pytest.raises(ValueError):
            Simulator(cft_8_3, UniformTraffic(10), 0.5, FAST)

    def test_rejects_bad_load(self, cft_8_3):
        traffic = UniformTraffic(cft_8_3.num_terminals)
        with pytest.raises(ValueError):
            Simulator(cft_8_3, traffic, 0.0, FAST)
        with pytest.raises(ValueError):
            Simulator(cft_8_3, traffic, 1.5, FAST)


class TestTrafficComparisons:
    def test_pairing_saturation_not_above_uniform(self, cft_8_3):
        """Permutation traffic cannot beat uniform at saturation."""
        uni = make_traffic("uniform", cft_8_3.num_terminals, rng=5)
        pair = make_traffic("random-pairing", cft_8_3.num_terminals, rng=5)
        r_uni = simulate(cft_8_3, uni, 1.0, FAST)
        r_pair = simulate(cft_8_3, pair, 1.0, FAST)
        assert r_pair.accepted_load <= r_uni.accepted_load + 0.05

    def test_fixed_random_worst(self, cft_8_3):
        """Hot spots cap fixed-random well below uniform."""
        uni = make_traffic("uniform", cft_8_3.num_terminals, rng=6)
        hot = make_traffic("fixed-random", cft_8_3.num_terminals, rng=6)
        r_uni = simulate(cft_8_3, uni, 1.0, FAST)
        r_hot = simulate(cft_8_3, hot, 1.0, FAST)
        assert r_hot.accepted_load < r_uni.accepted_load


class TestFaultyRuns:
    def test_removed_links_still_deliver(self, rfc_medium):
        links = rfc_medium.links()[:8]
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=7)
        sim = Simulator(rfc_medium, traffic, 0.3, FAST, removed_links=links)
        result = sim.run()
        assert result.measured_packets > 0

    def test_isolating_a_leaf_drops_packets(self, rfc_medium):
        # Remove every up-link of leaf 0.
        leaf = rfc_medium.switch_id(0, 0)
        doomed = [
            link for link in rfc_medium.links() if leaf in (link.lo, link.hi)
        ]
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=8)
        sim = Simulator(
            rfc_medium, traffic, 0.5, FAST, removed_links=doomed
        )
        sim.run()
        assert sim.unroutable_packets > 0

    def test_faults_reduce_saturation(self, rfc_medium):
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=9)
        healthy = simulate(rfc_medium, traffic, 1.0, FAST)
        links = rfc_medium.links()
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=9)
        broken = Simulator(
            rfc_medium, traffic, 1.0, FAST,
            removed_links=links[: len(links) // 4],
        ).run()
        assert broken.accepted_load < healthy.accepted_load


class TestZeroWindowInspection:
    """Post-run inspection with a degenerate measurement window
    reports zeros instead of raising ZeroDivisionError.

    ``SimulationParams`` validation forbids ``measure_cycles < 1``, so
    the degenerate window is forced through the params object the way
    a hand-built harness (or a future knob) could."""

    @pytest.fixture()
    def zero_window_sim(self, rfc_small):
        traffic = make_traffic("uniform", rfc_small.num_terminals, rng=1)
        sim = Simulator(rfc_small, traffic, 0.5, FAST)
        sim.run()
        object.__setattr__(sim.params, "measure_cycles", 0)
        return sim

    def test_link_utilization_zero_window(self, zero_window_sim):
        assert zero_window_sim.link_utilization() == {
            "mean": 0.0, "max": 0.0, "p95": 0.0,
        }

    def test_stage_utilization_zero_window(self, zero_window_sim):
        stages = zero_window_sim.stage_utilization()
        assert stages
        assert all(v == 0.0 for v in stages.values())

    def test_link_loads_zero_window(self, zero_window_sim):
        loads = zero_window_sim.link_loads()
        assert loads
        assert all(v == 0.0 for v in loads.values())

    def test_ejection_utilization_zero_window(self, zero_window_sim):
        ejected = zero_window_sim.ejection_utilization()
        assert ejected == [0.0] * zero_window_sim.topo.num_terminals
