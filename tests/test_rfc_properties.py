"""Property-based invariants of RFC construction (Definition 3.1, Fig. 4).

For randomized ``(R, N1, l, seed)`` inside the Theorem 4.2-feasible
range, every sampled radix-regular RFC must have the canonical level
sizes, conserve ports across each bipartite stage, and respect the
(semi)regular degree bounds the random bipartite construction promises.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.rfc import radix_regular_rfc, rfc_level_sizes
from repro.core.theory import rfc_max_leaves


@st.composite
def rfc_params(draw):
    radix = draw(st.sampled_from([4, 6, 8]))
    levels = draw(st.sampled_from([2, 3]))
    cap = min(rfc_max_leaves(radix, levels), 24)
    n1 = draw(st.integers(radix // 2, cap // 2).map(lambda k: 2 * k))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    return radix, n1, levels, seed


@settings(max_examples=30, deadline=None)
@given(params=rfc_params())
def test_level_sizes_canonical(params):
    """N1 switches per non-root level, N1/2 roots."""
    radix, n1, levels, seed = params
    topo = radix_regular_rfc(radix, n1, levels, rng=seed)
    assert topo.level_sizes == rfc_level_sizes(n1, levels)
    assert topo.level_sizes == [n1] * (levels - 1) + [n1 // 2]
    assert topo.num_terminals == n1 * radix // 2
    topo.validate()


@settings(max_examples=30, deadline=None)
@given(params=rfc_params())
def test_port_conservation_per_stage(params):
    """Up-links out of level i == down-links into level i+1 == the
    stage's cable count; totals reconcile with num_links/num_ports."""
    radix, n1, levels, seed = params
    topo = radix_regular_rfc(radix, n1, levels, rng=seed)
    total_links = 0
    for stage in range(levels - 1):
        ups = sum(
            topo.up_degree(stage, s)
            for s in range(topo.level_sizes[stage])
        )
        downs = sum(
            len(topo.down_neighbors(stage + 1, t))
            for t in range(topo.level_sizes[stage + 1])
        )
        assert ups == downs == topo.level_sizes[stage] * radix // 2
        total_links += ups
    assert topo.num_links == total_links
    # Each cable uses two ports, each terminal one (Figure 7 cost).
    assert topo.num_ports == 2 * total_links + topo.num_terminals


@settings(max_examples=30, deadline=None)
@given(params=rfc_params())
def test_semiregular_bipartite_degrees(params):
    """Each stage is a semiregular bipartite graph: lower side exactly
    R/2 up-links, upper side exactly total/N_{i+1} down-links (the
    divisibility the generator enforces makes floor == ceil), and no
    parallel links."""
    radix, n1, levels, seed = params
    topo = radix_regular_rfc(radix, n1, levels, rng=seed)
    half = radix // 2
    for stage in range(levels - 1):
        n_hi = topo.level_sizes[stage + 1]
        expected_down = topo.level_sizes[stage] * half // n_hi
        for s in range(topo.level_sizes[stage]):
            ups = topo.up_neighbors(stage, s)
            assert len(ups) == half
            assert len(set(ups)) == len(ups)  # no parallel links
            assert all(0 <= t < n_hi for t in ups)
        for t in range(n_hi):
            assert len(topo.down_neighbors(stage + 1, t)) == expected_down
    assert topo.is_radix_regular()


@settings(max_examples=30, deadline=None)
@given(params=rfc_params())
def test_generation_is_seed_deterministic(params):
    """Same (R, N1, l, seed) always wires the same instance."""
    radix, n1, levels, seed = params
    a = radix_regular_rfc(radix, n1, levels, rng=seed)
    b = radix_regular_rfc(radix, n1, levels, rng=seed)
    assert a.level_sizes == b.level_sizes
    for stage in range(levels - 1):
        for s in range(a.level_sizes[stage]):
            assert a.up_neighbors(stage, s) == b.up_neighbors(stage, s)


@pytest.mark.slow
@settings(max_examples=100, deadline=None)
@given(params=rfc_params())
def test_structure_invariants_elevated(params):
    """Level sizes + degrees + validation at CI depth."""
    radix, n1, levels, seed = params
    topo = radix_regular_rfc(radix, n1, levels, rng=seed)
    topo.validate()
    assert topo.is_radix_regular()
    assert topo.level_sizes == rfc_level_sizes(n1, levels)
