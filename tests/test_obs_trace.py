"""Unit tests for the bounded-buffer JSONL trace writer."""

import json

import pytest

from repro.obs.trace import TraceWriter


def read_lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line
    ]


class TestMemoryMode:
    def test_records_kept_in_order(self):
        with TraceWriter(None) as w:
            w.emit({"ev": "a", "t": 0})
            w.emit({"ev": "b", "t": 1})
        assert [r["ev"] for r in w.records()] == ["a", "b"]
        assert w.written == 2

    def test_max_records_drops_and_counts(self):
        w = TraceWriter(None, max_records=2)
        for t in range(5):
            w.emit({"ev": "x", "t": t})
        assert w.written == 2
        assert w.dropped == 3
        assert len(w.records()) == 2


class TestDiskMode:
    def test_buffered_then_flushed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        w = TraceWriter(path, buffer_records=10)
        w.emit({"ev": "a", "t": 0})
        # Below the buffer threshold: nothing on disk yet.
        assert path.read_text() == ""
        assert w.written == 0
        w.flush()
        assert w.written == 1
        assert read_lines(path) == [{"ev": "a", "t": 0}]

    def test_auto_flush_at_threshold(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        w = TraceWriter(path, buffer_records=3)
        for t in range(3):
            w.emit({"ev": "x", "t": t})
        assert w.written == 3
        assert len(read_lines(path)) == 3

    def test_close_flushes_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, buffer_records=100) as w:
            w.emit({"ev": "x", "t": 0})
        assert len(read_lines(path)) == 1

    def test_emit_after_close_raises(self, tmp_path):
        w = TraceWriter(tmp_path / "t.jsonl")
        w.close()
        with pytest.raises(ValueError):
            w.emit({"ev": "x"})

    def test_truncates_existing_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("stale\n")
        with TraceWriter(path) as w:
            w.emit({"ev": "fresh", "t": 0})
        assert read_lines(path) == [{"ev": "fresh", "t": 0}]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        with TraceWriter(path) as w:
            w.emit({"ev": "x", "t": 0})
        assert path.exists()

    def test_max_records_caps_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, buffer_records=2, max_records=5) as w:
            for t in range(9):
                w.emit({"ev": "x", "t": t})
        assert w.written == 5
        assert w.dropped == 4
        assert len(read_lines(path)) == 5

    def test_lines_have_sorted_keys(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as w:
            w.emit({"z": 1, "a": 2, "ev": "x"})
        line = path.read_text().splitlines()[0]
        assert line == '{"a": 2, "ev": "x", "z": 1}'


class TestValidation:
    def test_bad_buffer_size(self):
        with pytest.raises(ValueError):
            TraceWriter(None, buffer_records=0)

    def test_bad_max_records(self):
        with pytest.raises(ValueError):
            TraceWriter(None, max_records=0)
