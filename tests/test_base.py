"""Unit tests for the network data model (topologies.base)."""

import pytest

from repro.topologies.base import DirectNetwork, FoldedClos, Link, NetworkError


class TestLink:
    def test_normalizes_order(self):
        assert Link(5, 2) == Link(2, 5)
        assert Link(5, 2).lo == 2
        assert Link(5, 2).hi == 5

    def test_hashable_and_equal(self):
        assert len({Link(1, 2), Link(2, 1), Link(1, 3)}) == 2

    def test_rejects_self_link(self):
        with pytest.raises(NetworkError):
            Link(3, 3)

    def test_other_endpoint(self):
        link = Link(2, 7)
        assert link.other(2) == 7
        assert link.other(7) == 2
        with pytest.raises(NetworkError):
            link.other(4)

    def test_iteration(self):
        assert list(Link(9, 4)) == [4, 9]

    def test_ordering(self):
        assert Link(1, 2) < Link(1, 3) < Link(2, 3)


def tiny_clos() -> FoldedClos:
    """Radix-4 regular folded Clos: 4 leaves, 2 roots, full bipartite."""
    return FoldedClos(
        level_sizes=[4, 2],
        up_adjacency=[[[0, 1], [0, 1], [0, 1], [0, 1]]],
        hosts_per_leaf=2,
        radix=4,
        name="tiny",
    )


class TestFoldedClos:
    def test_counts(self):
        topo = tiny_clos()
        assert topo.num_levels == 2
        assert topo.num_switches == 6
        assert topo.num_leaves == 4
        assert topo.num_terminals == 8
        assert topo.num_links == 8
        assert topo.num_ports == 2 * 8 + 8

    def test_up_down_neighbors(self):
        topo = tiny_clos()
        assert topo.up_neighbors(0, 0) == (0, 1)
        assert topo.up_neighbors(1, 0) == ()  # roots have no up-links
        assert topo.down_neighbors(1, 1) == (0, 1, 2, 3)
        assert topo.down_neighbors(0, 0) == ()

    def test_degrees(self):
        topo = tiny_clos()
        assert topo.up_degree(0, 0) == 2
        assert topo.down_degree(0, 0) == 2  # terminals
        assert topo.down_degree(1, 0) == 4

    def test_flat_ids_roundtrip(self):
        topo = tiny_clos()
        seen = set()
        for level in range(topo.num_levels):
            for index in range(topo.level_sizes[level]):
                flat = topo.switch_id(level, index)
                assert topo.switch_level(flat) == (level, index)
                seen.add(flat)
        assert seen == set(range(topo.num_switches))

    def test_flat_id_bounds(self):
        topo = tiny_clos()
        with pytest.raises(NetworkError):
            topo.switch_id(2, 0)
        with pytest.raises(NetworkError):
            topo.switch_id(0, 4)
        with pytest.raises(NetworkError):
            topo.switch_level(6)

    def test_links_stable_order(self):
        topo = tiny_clos()
        assert topo.links() == topo.links()
        assert len(set(topo.links())) == topo.num_links

    def test_adjacency_symmetric(self):
        topo = tiny_clos()
        adj = topo.adjacency()
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                assert u in adj[v]

    def test_terminal_mapping(self):
        topo = tiny_clos()
        assert topo.terminal_switch(0) == 0
        assert topo.terminal_switch(3) == 1
        assert topo.terminal_switch(7) == 3
        assert list(topo.leaf_terminals(1)) == [2, 3]
        with pytest.raises(NetworkError):
            topo.terminal_switch(8)
        with pytest.raises(NetworkError):
            topo.leaf_terminals(4)

    def test_is_radix_regular(self):
        assert tiny_clos().is_radix_regular()

    def test_validate_rejects_port_overflow(self):
        with pytest.raises(NetworkError):
            FoldedClos(
                [2, 2],
                [[[0, 1], [0, 1]]],
                hosts_per_leaf=5,  # 5 + 2 up-links > radix 4
                radix=4,
            ).validate()

    def test_validate_rejects_missing_uplinks(self):
        topo = FoldedClos(
            [2, 2],
            [[[], [0, 1]]],
            hosts_per_leaf=1,
            radix=4,
        )
        with pytest.raises(NetworkError):
            topo.validate()

    def test_rejects_parallel_links(self):
        with pytest.raises(NetworkError):
            FoldedClos([2, 2], [[[0, 0], [1, 1]]], 1, 4)

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(NetworkError):
            FoldedClos([2, 2], [[[0, 2], [0, 1]]], 1, 4)

    def test_rejects_mismatched_stage_count(self):
        with pytest.raises(NetworkError):
            FoldedClos([2, 2, 2], [[[0], [1]]], 1, 4)

    def test_to_networkx(self):
        graph = tiny_clos().to_networkx()
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 8
        assert graph.nodes[0]["level"] == 0
        assert graph.nodes[5]["level"] == 1


class TestDirectNetwork:
    def test_counts(self, rrn_16):
        assert rrn_16.num_switches == 16
        assert rrn_16.num_terminals == 32
        assert rrn_16.num_links == 32
        assert rrn_16.num_ports == 2 * 32 + 32
        assert rrn_16.radix == 6

    def test_regularity(self, rrn_16):
        assert rrn_16.is_regular()
        assert all(rrn_16.degree(s) == 4 for s in range(16))

    def test_terminal_mapping(self, rrn_16):
        assert rrn_16.terminal_switch(0) == 0
        assert rrn_16.terminal_switch(31) == 15

    def test_rejects_asymmetric(self):
        with pytest.raises(NetworkError):
            DirectNetwork([[1], []], hosts_per_switch=1)

    def test_rejects_self_loop(self):
        with pytest.raises(NetworkError):
            DirectNetwork([[0, 1], [0]], hosts_per_switch=1)

    def test_links_match_adjacency(self, rrn_16):
        links = rrn_16.links()
        assert len(links) == rrn_16.num_links
        adj = rrn_16.adjacency()
        for link in links:
            assert link.hi in adj[link.lo]

    def test_to_networkx(self, rrn_16):
        graph = rrn_16.to_networkx()
        assert graph.number_of_nodes() == 16
        assert graph.number_of_edges() == 32
