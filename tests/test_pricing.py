"""Price model tests (the abstract's 95% cost-saving claim)."""

import pytest

from repro.cost.model import CostPoint, cft_cost, rfc_cost
from repro.cost.pricing import PriceModel, max_rfc_saving


class TestPriceModel:
    def test_port_only_default(self):
        point = CostPoint("X", radix=8, levels=2, terminals=10,
                          switches=5, wires=20)
        assert PriceModel().deployment_price(point) == 5 * 8

    def test_component_prices(self):
        point = CostPoint("X", radix=8, levels=2, terminals=10,
                          switches=5, wires=20)
        model = PriceModel(switch_base=100, per_port=2, per_cable=3,
                           per_nic=5)
        assert model.deployment_price(point) == (
            100 * 5 + 2 * 5 * 8 + 3 * 20 + 5 * 10
        )

    def test_price_per_terminal(self):
        point = cft_cost(8, 3)
        model = PriceModel()
        assert model.price_per_terminal(point) == pytest.approx(
            model.deployment_price(point) / point.terminals
        )

    def test_rejects_empty_deployment(self):
        point = CostPoint("X", 8, 2, terminals=0, switches=1, wires=0)
        with pytest.raises(ValueError):
            PriceModel().price_per_terminal(point)

    def test_equal_resources_equal_price(self):
        cft = cft_cost(36, 3)
        rfc = rfc_cost(36, cft.terminals // 18, 3)
        model = PriceModel(switch_base=50, per_port=1, per_cable=2)
        assert model.deployment_price(cft) == model.deployment_price(rfc)


class TestMaxSaving:
    def test_paper_abstract_claim(self):
        """'saving up to 95% of the cost' -- port-based, radix 36."""
        terminals, saving = max_rfc_saving(36)
        assert saving > 0.90
        assert terminals > 11_664  # just past the 3-level CFT step

    def test_saving_with_chassis_prices(self):
        model = PriceModel(switch_base=1_000, per_port=100, per_cable=50,
                           per_nic=30)
        _, saving = max_rfc_saving(36, model=model)
        assert saving > 0.75  # conclusion robust to price structure

    def test_no_saving_at_equal_resources(self):
        _, saving = max_rfc_saving(36, terminal_counts=[11_664])
        assert saving == pytest.approx(0.0, abs=1e-9)
