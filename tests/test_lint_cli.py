"""CLI and runner tests for ``repro.lint``: exit codes, output shapes,
the ``repro-rfc lint`` subcommand, ``python -m repro.lint`` and the
self-gate (the shipped source tree must lint clean)."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.lint.runner import main as lint_main

VIOLATION = textwrap.dedent(
    """\
    import random

    def wire(items):
        random.shuffle(items)
        return items
    """
)

CLEAN = textwrap.dedent(
    """\
    import random

    def wire(items, rng=None):
        rand = rng if isinstance(rng, random.Random) else random.Random(rng)
        rand.shuffle(items)
        return items
    """
)


@pytest.fixture
def violation_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(VIOLATION)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    return path


class TestExitCodes:
    def test_clean_exits_zero(self, clean_file, capsys):
        assert lint_main([str(clean_file)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, violation_file, capsys):
        assert lint_main([str(violation_file)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "1 finding" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_directory_walk(self, tmp_path, capsys):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "dirty.py").write_text(VIOLATION)
        (tmp_path / "pkg" / "clean.py").write_text(CLEAN)
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text(VIOLATION)
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert out.count("RPR001") == 1
        assert "__pycache__" not in out


class TestJsonFormat:
    def test_shape(self, violation_file, capsys):
        assert lint_main([str(violation_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "RPR001"
        assert finding["severity"] == "error"
        assert finding["file"] == str(violation_file)
        assert finding["line"] == 4
        assert finding["col"] >= 1
        assert "random.shuffle" in finding["message"]

    def test_clean_shape(self, clean_file, capsys):
        assert lint_main([str(clean_file), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"version": 1, "count": 0, "findings": []}


class TestCliSubcommand:
    def test_lint_subcommand_clean(self, clean_file, capsys):
        assert cli_main(["lint", str(clean_file)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_subcommand_findings(self, violation_file, capsys):
        assert cli_main(["lint", str(violation_file), "--format", "json"]) == 1
        assert json.loads(capsys.readouterr().out)["count"] == 1


class TestModuleEntryPoint:
    def test_python_dash_m(self, violation_file):
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(violation_file)],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 1
        assert "RPR001" in proc.stdout


class TestSelfGate:
    def test_shipped_tree_is_clean(self):
        """The source tree must pass its own determinism gate."""
        package_root = Path(repro.__file__).resolve().parent
        assert lint_main([str(package_root)]) == 0

    def test_every_fixture_code_is_registered(self):
        from repro.lint import checker_codes

        assert checker_codes() == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR101", "RPR102", "RPR103", "RPR104", "RPR105",
        ]
