"""Four-way engine differential on the flow-workload layer.

The exact engines (reference, fast, vectorized) must produce
**bit-for-bit identical** ``flow_complete`` trace streams for any
workload -- flow mode consumes no arrival/destination randomness, so
the only RNG draws (valiant vias, arbitration) happen in the same
order on every engine.  The relaxed engine is held to *statistical*
equivalence only, through the :mod:`statcheck` toolkit.

A golden trace snapshot (``tests/data/golden_flow_trace.json``) pins
one scenario's exact byte-level record stream across releases, and a
non-perturbation check proves attaching the tracker never changes the
simulation itself.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from statcheck import bootstrap_ci, intervals_overlap, ks_2sample

from repro.obs.trace import TraceWriter
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.topologies.base import FoldedClos
from repro.workloads import (
    Flow,
    FlowSchedule,
    FlowTraffic,
    FlowTracker,
    make_workload,
    run_workload,
)

GOLDEN = Path(__file__).resolve().parent / "data" / "golden_flow_trace.json"

EXACT_ENGINES = ("reference", "fast", "vectorized")


def dumbbell(hosts_per_leaf=4):
    return FoldedClos(
        level_sizes=[2, 1],
        up_adjacency=[[[0], [0]]],
        hosts_per_leaf=hosts_per_leaf,
        radix=2 + hosts_per_leaf,
        name="dumbbell",
    )


def exact_params(engine, cycles=1_000, seed=1, **overrides):
    return SimulationParams(
        measure_cycles=cycles, warmup_cycles=0, engine=engine, seed=seed,
        **overrides,
    )


def traced_run(topo, workload, params):
    writer = TraceWriter(None)
    result = run_workload(topo, workload, params, trace_writer=writer)
    return result, writer.records()


class TestExactEngineParity:
    """reference == fast == vectorized, record for record."""

    @pytest.mark.parametrize("pattern", ["incast", "poisson-mix", "rpc"])
    def test_flow_complete_streams_bit_for_bit(self, rfc_small, pattern):
        n = rfc_small.num_terminals
        workload = make_workload(
            pattern, n, seed=17, load=0.4, duration=600,
            fanin=8, rpc_size=4, events=3,
        )
        streams = {}
        stats = {}
        for engine in EXACT_ENGINES:
            result, records = traced_run(
                rfc_small, workload, exact_params(engine, cycles=1_500)
            )
            streams[engine] = records
            stats[engine] = result.flow_stats
        assert streams["fast"] == streams["reference"]
        assert streams["vectorized"] == streams["reference"]
        assert streams["reference"], "scenario produced no completions"
        assert stats["fast"] == stats["reference"]
        assert stats["vectorized"] == stats["reference"]

    def test_valiant_stream_parity(self, rfc_small):
        """Valiant draws come from the shared RNG in serial order, so
        parity must survive misrouting too."""
        n = rfc_small.num_terminals
        workload = make_workload(
            "rpc", n, seed=5, load=0.3, duration=400, rpc_size=2
        )
        streams = []
        for engine in EXACT_ENGINES:
            _, records = traced_run(
                rfc_small,
                workload,
                exact_params(engine, cycles=1_200, valiant=True),
            )
            streams.append(records)
        assert streams[0] == streams[1] == streams[2]
        assert streams[0]


class TestGoldenTrace:
    """Byte-level pin of one scenario's flow_complete stream.

    Regenerate (only on an intentional semantic change) with the
    snippet in ``docs/WORKLOADS.md``.
    """

    SCENARIO = dict(seed=3, fanin=4, rpc_size=2, events=2, duration=200)

    def _stream(self, engine):
        topo = dumbbell(4)
        workload = make_workload(
            "incast", topo.num_terminals, **self.SCENARIO
        )
        _, records = traced_run(topo, workload, exact_params(engine))
        return records

    @pytest.mark.parametrize("engine", EXACT_ENGINES)
    def test_matches_snapshot(self, engine):
        golden = json.loads(GOLDEN.read_text())
        assert self._stream(engine) == golden

    def test_snapshot_is_sane(self):
        golden = json.loads(GOLDEN.read_text())
        assert len(golden) == 8
        for record in golden:
            assert record["ev"] == "flow_complete"
            assert record["fct"] == record["end"] - record["start"]


class TestNonPerturbation:
    """The tracker observes; it must never steer.

    A run with the FlowTracker attached must yield the same core
    SimResult as a bare run of the same schedule -- on every exact
    engine (side channels are excluded from SimResult equality by
    design, so ``==`` is exactly the right comparison)."""

    @pytest.mark.parametrize("engine", EXACT_ENGINES)
    def test_tracker_does_not_change_results(self, engine):
        topo = dumbbell(4)
        workload = make_workload(
            "poisson-mix", topo.num_terminals, seed=11, load=0.5,
            duration=500,
        )
        params = exact_params(engine)
        tracked = run_workload(topo, workload, params)
        load = tracked.offered_load
        bare = Simulator(topo, workload, load, params).run()
        assert tracked == bare
        assert tracked.core_dict() == bare.core_dict()
        assert tracked.flow_stats is not None
        assert bare.flow_stats is None


class TestRelaxedEquivalence:
    """The relaxed engine: same physics, different randomness."""

    def _fct_samples(self, rng_mode, seeds):
        topo = dumbbell(8)
        means, pooled = [], []
        for seed in seeds:
            workload = make_workload(
                "poisson-mix", topo.num_terminals, seed=seed + 101,
                load=0.5, duration=800,
            )
            params = SimulationParams(
                measure_cycles=2_000, warmup_cycles=0, seed=seed,
                rng_mode=rng_mode,
            )
            schedule = workload.flow_schedule
            tracker = FlowTracker(schedule)
            Simulator(topo, workload, 0.5, params, observer=tracker).run()
            fcts = [fct for fct, _ in tracker.fct_records()]
            assert fcts, f"seed {seed}: no completions"
            means.append(sum(fcts) / len(fcts))
            pooled.extend(fcts)
        return means, pooled

    def test_relaxed_fct_smoke_band(self):
        """Deterministic single-seed sanity: the relaxed FCT mean sits
        within a generous band of the exact engines' (tier-1 safe)."""
        exact_means, _ = self._fct_samples("exact", [2])
        relaxed_means, _ = self._fct_samples("relaxed", [2])
        assert relaxed_means[0] == pytest.approx(
            exact_means[0], rel=0.25
        )

    @pytest.mark.slow
    @pytest.mark.statistical
    def test_relaxed_fct_statistically_equivalent(self):
        seeds = range(8)
        exact_means, exact_pool = self._fct_samples("exact", seeds)
        relaxed_means, relaxed_pool = self._fct_samples("relaxed", seeds)
        ci_exact = bootstrap_ci(exact_means, seed=0)
        ci_relaxed = bootstrap_ci(relaxed_means, seed=1)
        assert intervals_overlap(ci_exact, ci_relaxed), (
            ci_exact,
            ci_relaxed,
        )
        _, pvalue = ks_2sample(exact_pool, relaxed_pool)
        assert pvalue > 0.01, pvalue


# ---------------------------------------------------------------------------
# Hypothesis properties on generators, schedules and small engine runs.

sizes_st = st.integers(min_value=1, max_value=6)
start_st = st.integers(min_value=0, max_value=120)


@st.composite
def small_schedules(draw):
    """Random schedules on the 8-terminal dumbbell."""
    n_flows = draw(st.integers(min_value=1, max_value=10))
    flows = [
        Flow(
            i,
            draw(st.integers(min_value=0, max_value=7)),
            draw(st.integers(min_value=0, max_value=7)),
            draw(sizes_st),
            draw(start_st),
        )
        for i in range(n_flows)
    ]
    flows = [f for f in flows if f.src != f.dst]
    if not flows:
        flows = [Flow(0, 0, 1, 1, 0)]
    return FlowSchedule(flows, 8)


@settings(max_examples=25, deadline=None)
@given(schedule=small_schedules())
def test_schedule_invariants(schedule):
    starts = [(f.start, f.flow_id) for f in schedule.flows]
    assert starts == sorted(starts)
    assert schedule.total_packets == sum(f.size for f in schedule.flows)
    # Serials are dense and releases carry exactly one entry per packet.
    assert sorted(schedule.flow_of_serial) == sorted(
        fid
        for f in schedule.flows
        for fid in [schedule.flows.index(f)] * f.size
    )
    assert sum(len(row) for row in schedule.releases) == (
        schedule.total_packets
    )
    times, terms, dsts, serials = schedule.arrival_lists(10_000)
    assert len(times) == schedule.total_packets
    assert sorted(serials) == list(range(schedule.total_packets))
    key = list(zip(times, terms, serials))
    assert key == sorted(key)


@settings(max_examples=15, deadline=None)
@given(schedule=small_schedules(), engine=st.sampled_from(EXACT_ENGINES))
def test_flow_conservation_and_fct_bounds(schedule, engine):
    """Every flow either completes or is dropped; completed flows
    respect the serialization lower bound fct >= size * P."""
    topo = dumbbell(4)
    params = exact_params(engine, cycles=2_000)
    result = run_workload(topo, FlowTraffic(schedule), params)
    fs = result.flow_stats
    assert fs["flows_total"] == len(schedule.flows)
    assert fs["flows_completed"] + fs["flows_dropped"] <= fs["flows_total"]
    tracker = FlowTracker(schedule)
    Simulator(topo, FlowTraffic(schedule), 0.5, params,
              observer=tracker).run()
    for fct, size in tracker.fct_records():
        assert fct >= size * params.packet_phits


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generators_reproducible(seed):
    a = make_workload("poisson-mix", 16, seed=seed, load=0.3, duration=300)
    b = make_workload("poisson-mix", 16, seed=seed, load=0.3, duration=300)
    assert a.flow_schedule.flows == b.flow_schedule.flows


def test_size_mix_proportions():
    """The lognormal elephant/mice mix honours its configured split to
    within sampling noise (fixed seed: deterministic assertion)."""
    workload = make_workload(
        "poisson-mix", 64, seed=0, load=0.6, duration=20_000
    )
    flows = workload.flow_schedule.flows
    assert len(flows) > 300
    big = sum(1 for f in flows if f.size >= 20)
    fraction = big / len(flows)
    assert 0.04 < fraction < 0.20, fraction
