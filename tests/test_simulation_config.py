"""SimulationParams validation tests."""

import pytest

from repro.simulation.config import SimulationParams


class TestDefaults:
    def test_paper_table2(self):
        params = SimulationParams()
        assert params.measure_cycles == 10_000
        assert params.virtual_channels == 4
        assert params.buffer_packets == 4
        assert params.packet_phits == 16
        assert params.link_latency == 1
        assert params.minimal_routing

    def test_horizon(self):
        params = SimulationParams(measure_cycles=100, warmup_cycles=20)
        assert params.horizon == 120


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("measure_cycles", 0),
            ("warmup_cycles", -1),
            ("virtual_channels", 0),
            ("buffer_packets", 0),
            ("packet_phits", 0),
            ("link_latency", 0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            SimulationParams(**{field: value})


class TestUpSelection:
    def test_accepts_known_modes(self):
        assert SimulationParams(up_selection="adaptive").up_selection == (
            "adaptive"
        )

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            SimulationParams(up_selection="round-robin")

    def test_valiant_vc_validation(self):
        with pytest.raises(ValueError):
            SimulationParams(valiant=True, virtual_channels=1)
        assert SimulationParams(valiant=True, virtual_channels=2).valiant


class TestScaled:
    def test_replaces_fields(self):
        params = SimulationParams().scaled(measure_cycles=500, seed=7)
        assert params.measure_cycles == 500
        assert params.seed == 7
        assert params.packet_phits == 16

    def test_frozen(self):
        params = SimulationParams()
        with pytest.raises(Exception):
            params.seed = 3  # type: ignore[misc]
