"""Shortest-path and k-shortest-path routing tests."""

import networkx as nx
import pytest

from repro.routing.shortest import (
    all_shortest_next_hops,
    k_shortest_paths,
    shortest_path,
    shortest_path_lengths,
)


def ladder():
    """0-1-2-3 path plus chord 0-3 (two routes between 0 and 3)."""
    return [[1, 3], [0, 2], [1, 3], [2, 0]]


class TestShortestPath:
    def test_direct(self):
        assert shortest_path(ladder(), 0, 3) == [0, 3]

    def test_self(self):
        assert shortest_path(ladder(), 2, 2) == [2]

    def test_disconnected(self):
        assert shortest_path([[1], [0], []], 0, 2) is None

    def test_lengths(self):
        assert shortest_path_lengths(ladder(), 0) == [0, 1, 2, 1]

    def test_cross_check_networkx(self, rrn_16):
        adj = rrn_16.adjacency()
        graph = rrn_16.to_networkx()
        for src in range(0, 16, 3):
            ours = shortest_path_lengths(adj, src)
            theirs = nx.single_source_shortest_path_length(graph, src)
            for v in range(16):
                assert ours[v] == theirs[v]


class TestNextHops:
    def test_ecmp_table(self):
        table = all_shortest_next_hops(ladder(), 3)
        assert table[3] == []
        assert set(table[0]) == {3}
        assert set(table[2]) == {3}
        assert set(table[1]) == {0, 2}  # both two hops from 3

    def test_unreachable_empty(self):
        table = all_shortest_next_hops([[1], [0], []], 2)
        assert table[0] == []


class TestKShortest:
    def test_orders_by_length(self):
        paths = k_shortest_paths(ladder(), 0, 2, 4)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        assert paths[0] in ([0, 1, 2], [0, 3, 2])

    def test_paths_distinct_and_simple(self, rrn_16):
        adj = rrn_16.adjacency()
        paths = k_shortest_paths(adj, 0, 9, 6)
        assert len({tuple(p) for p in paths}) == len(paths)
        for path in paths:
            assert len(set(path)) == len(path)  # loopless
            assert path[0] == 0 and path[-1] == 9
            for a, b in zip(path, path[1:]):
                assert b in adj[a]

    def test_k1_is_shortest(self, rrn_16):
        adj = rrn_16.adjacency()
        [only] = k_shortest_paths(adj, 0, 5, 1)
        assert len(only) == len(shortest_path(adj, 0, 5))

    def test_disconnected_empty(self):
        assert k_shortest_paths([[1], [0], []], 0, 2, 3) == []

    def test_k_zero(self):
        assert k_shortest_paths(ladder(), 0, 2, 0) == []

    def test_exhausts_small_graph(self):
        # Triangle: exactly two simple paths 0->2.
        tri = [[1, 2], [0, 2], [0, 1]]
        paths = k_shortest_paths(tri, 0, 2, 10)
        assert sorted(paths) == [[0, 1, 2], [0, 2]]

    def test_cross_check_networkx(self, rrn_16):
        graph = rrn_16.to_networkx()
        ours = k_shortest_paths(rrn_16.adjacency(), 2, 11, 5)
        theirs = []
        for i, path in enumerate(
            nx.shortest_simple_paths(graph, 2, 11)
        ):
            if i == 5:
                break
            theirs.append(path)
        assert [len(p) for p in ours] == [len(p) for p in theirs]
