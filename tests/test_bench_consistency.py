"""Benchmark-suite consistency: every experiment id has a bench file."""

from pathlib import Path

import repro.experiments as exps

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

# Experiment id -> benchmark module that regenerates it.
EXPECTED = {
    "thm42": "bench_thm42_threshold.py",
    "fig5": "bench_fig5_diameter.py",
    "fig6": "bench_fig6_scalability.py",
    "fig7": "bench_fig7_expandability.py",
    "tab3": "bench_table3_disconnect.py",
    "fig8": "bench_fig8_scenario1.py",
    "fig9": "bench_fig9_scenario2.py",
    "fig10": "bench_fig10_scenario3.py",
    "fig11": "bench_fig11_updown_faults.py",
    "fig12": "bench_fig12_faulty_throughput.py",
    "sec42": "bench_sec42_bisection.py",
    "sec5": "bench_sec5_scenarios.py",
    "thm91": "bench_generation.py",
}


class TestBenchmarkCoverage:
    def test_every_experiment_has_a_bench(self):
        assert set(EXPECTED) == set(exps.EXPERIMENTS)
        for exp_id, bench in EXPECTED.items():
            assert (BENCH_DIR / bench).exists(), f"{exp_id} -> {bench}"

    def test_ablation_benches_exist(self):
        for name in ("bench_ablation_routing.py", "bench_ablation_valiant.py"):
            assert (BENCH_DIR / name).exists()

    def test_bench_files_reference_their_experiment(self):
        # Sanity: each bench imports from repro (not stale copies).
        for bench in BENCH_DIR.glob("bench_*.py"):
            text = bench.read_text()
            assert "from repro" in text, bench.name
