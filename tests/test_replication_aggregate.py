"""Aggregation of replicated results, including NaN-latency guards.

Regression: a replication that delivers no measured packet reports NaN
latency.  ``aggregate_replications`` must exclude those from the
latency moments, report stdev 0.0 when exactly one valid latency
remains (mirroring ``accepted_stdev``'s single-sample guard), and
report NaN -- not a fake 0.0 -- when no replication produced a valid
latency at all.
"""

import math
import statistics

import pytest

from repro.simulation.replication import aggregate_replications
from repro.simulation.stats import SimResult


def _result(accepted: float, latency: float) -> SimResult:
    return SimResult(
        offered_load=0.5, accepted_load=accepted, avg_latency=latency,
        avg_hops=4.0, generated_packets=10, delivered_packets=10,
        measured_packets=0 if math.isnan(latency) else 8,
        max_latency=0, p50_latency=latency, p99_latency=latency,
        traffic="uniform", topology="net",
    )


NAN = float("nan")


class TestLatencyGuards:
    def test_all_nan_latencies_yield_nan_moments(self):
        agg = aggregate_replications(
            [_result(0.1, NAN), _result(0.2, NAN)], 0.5, "uniform", "net"
        )
        assert math.isnan(agg.latency_mean)
        assert math.isnan(agg.latency_stdev)
        assert agg.accepted_mean == pytest.approx(0.15)

    def test_single_valid_latency_has_zero_stdev(self):
        agg = aggregate_replications(
            [_result(0.1, NAN), _result(0.2, 33.0), _result(0.3, NAN)],
            0.5, "uniform", "net",
        )
        assert agg.latency_mean == 33.0
        assert agg.latency_stdev == 0.0
        assert agg.replications == 3

    def test_two_valid_latencies_use_sample_stdev(self):
        agg = aggregate_replications(
            [_result(0.1, 30.0), _result(0.2, 40.0), _result(0.3, NAN)],
            0.5, "uniform", "net",
        )
        assert agg.latency_mean == pytest.approx(35.0)
        assert agg.latency_stdev == pytest.approx(
            statistics.stdev([30.0, 40.0])
        )

    def test_row_renders_with_nan_latency(self):
        agg = aggregate_replications(
            [_result(0.1, NAN)], 0.5, "uniform", "net"
        )
        assert "nan" in agg.row()

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            aggregate_replications([], 0.5, "uniform", "net")


class TestAcceptedGuards:
    def test_single_replication_zero_accepted_stdev(self):
        agg = aggregate_replications([_result(0.4, 20.0)], 0.5, "u", "n")
        assert agg.accepted_stdev == 0.0
        assert agg.accepted_mean == 0.4
