"""Scenario harness parameter handling + expansion property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expansion import expand_rfc
from repro.core.rfc import rfc_with_updown
from repro.experiments.scenario_sim import run_scenario
from repro.simulation.config import SimulationParams


class TestRunScenarioParams:
    def test_params_override(self):
        params = SimulationParams(
            measure_cycles=300, warmup_cycles=100, seed=5
        )
        table = run_scenario(
            "equal-resources-11k",
            quick=True,
            seed=5,
            loads=[0.3],
            traffics=("uniform",),
            params=params,
        )
        assert len(table.rows) == 1

    def test_traffics_subset(self):
        table = run_scenario(
            "equal-resources-11k",
            quick=True,
            loads=[0.3],
            traffics=("fixed-random",),
            params=SimulationParams(measure_cycles=300, warmup_cycles=100),
        )
        assert all(row[0] == "fixed-random" for row in table.rows)


class TestExpansionProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        steps=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_expansion_invariants(self, steps, seed):
        topo, _ = rfc_with_updown(8, 20, 3, rng=seed)
        expanded, report = expand_rfc(topo, steps=steps, rng=seed + 1)
        # Structural invariants hold for any number of steps.
        assert expanded.is_radix_regular()
        expanded.validate()
        assert expanded.num_leaves == 20 + 2 * steps
        assert report.terminals_added == 8 * steps
        assert expanded.num_links == (
            expanded.num_leaves * 4 * (expanded.num_levels - 1)
        )

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_expansion_preserves_old_terminals(self, seed):
        """Old terminals keep their leaf assignment across expansion."""
        topo, _ = rfc_with_updown(8, 20, 3, rng=seed)
        expanded, _ = expand_rfc(topo, steps=2, rng=seed + 1)
        for terminal in range(topo.num_terminals):
            assert expanded.terminal_switch(terminal) == (
                topo.terminal_switch(terminal)
            )
