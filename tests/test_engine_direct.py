"""Direct-network (RRN/Jellyfish) simulation and Valiant routing tests."""

import pytest

from repro.core.rfc import rfc_with_updown
from repro.routing.table import EcmpTableRouter
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator, simulate
from repro.simulation.traffic import make_traffic
from repro.topologies.rrn import random_regular_network

FAST = SimulationParams(measure_cycles=600, warmup_cycles=200, seed=2)


class TestEcmpTableRouter:
    def test_next_hops_minimal(self, rrn_16):
        router = EcmpTableRouter.for_network(rrn_16)
        adj = rrn_16.adjacency()
        for dest in range(0, 16, 3):
            for s in range(16):
                hops = router.next_hops(s, dest)
                if s == dest:
                    assert hops == []
                    continue
                d = router.distance(s, dest)
                for t in hops:
                    assert t in adj[s]
                    assert router.distance(t, dest) == d - 1

    def test_reachable(self, rrn_16):
        router = EcmpTableRouter.for_network(rrn_16)
        assert router.reachable(0, 15)
        assert router.reachable(3, 3)

    def test_disconnected_component(self):
        router = EcmpTableRouter([[1], [0], []])
        assert not router.reachable(0, 2)
        assert router.next_hops(0, 2) == []

    def test_max_route_length(self, rrn_16):
        router = EcmpTableRouter.for_network(rrn_16)
        assert router.max_route_length(list(range(16))) <= 4


class TestDirectSimulation:
    def test_low_load_delivery(self, rrn_16):
        traffic = make_traffic("uniform", rrn_16.num_terminals, rng=1)
        result = simulate(rrn_16, traffic, 0.2, FAST)
        assert result.accepted_load == pytest.approx(0.2, abs=0.06)
        assert result.measured_packets > 0

    def test_saturation_sane(self):
        net = random_regular_network(32, 5, 2, rng=4)
        traffic = make_traffic("uniform", net.num_terminals, rng=2)
        result = simulate(net, traffic, 1.0, FAST)
        assert 0.2 < result.accepted_load < 1.0

    def test_no_unroutable_on_connected(self, rrn_16):
        traffic = make_traffic("uniform", rrn_16.num_terminals, rng=3)
        sim = Simulator(rrn_16, traffic, 0.4, FAST)
        sim.run()
        assert sim.unroutable_packets == 0

    def test_link_removal_drops_when_isolated(self, rrn_16):
        # Cut every link of switch 0.
        doomed = [l for l in rrn_16.links() if 0 in (l.lo, l.hi)]
        traffic = make_traffic("uniform", rrn_16.num_terminals, rng=4)
        sim = Simulator(rrn_16, traffic, 0.5, FAST, removed_links=doomed)
        sim.run()
        assert sim.unroutable_packets > 0

    def test_hop_counts_match_distances(self, rrn_16):
        traffic = make_traffic("uniform", rrn_16.num_terminals, rng=5)
        result = simulate(rrn_16, traffic, 0.1, FAST)
        # Mean switch hops must sit between 1 and the diameter.
        assert 1.0 <= result.avg_hops <= 4.0


class TestValiant:
    def test_validation_needs_two_vcs(self):
        with pytest.raises(ValueError):
            SimulationParams(valiant=True, virtual_channels=1)

    def test_valiant_doubles_hops(self):
        topo, _ = rfc_with_updown(8, 24, 3, rng=6)
        traffic = make_traffic("random-pairing", topo.num_terminals, rng=7)
        direct = simulate(topo, traffic, 0.3, FAST)
        traffic = make_traffic("random-pairing", topo.num_terminals, rng=7)
        valiant = simulate(topo, traffic, 0.3, FAST.scaled(valiant=True))
        assert valiant.avg_hops > 1.5 * direct.avg_hops

    def test_paper_claim_minimal_beats_valiant_on_pairing(self):
        """Section 3: RFCs route adversarial traffic well above the 50%
        Valiant ceiling *without* randomization."""
        topo, _ = rfc_with_updown(8, 32, 3, rng=8)
        traffic = make_traffic("random-pairing", topo.num_terminals, rng=9)
        minimal = simulate(topo, traffic, 1.0, FAST)
        traffic = make_traffic("random-pairing", topo.num_terminals, rng=9)
        valiant = simulate(topo, traffic, 1.0, FAST.scaled(valiant=True))
        assert minimal.accepted_load > 0.5
        assert minimal.accepted_load > valiant.accepted_load

    def test_valiant_still_delivers_everything_routable(self):
        topo, _ = rfc_with_updown(8, 24, 3, rng=10)
        traffic = make_traffic("uniform", topo.num_terminals, rng=11)
        sim = Simulator(topo, traffic, 0.2, FAST.scaled(valiant=True))
        result = sim.run()
        assert sim.unroutable_packets == 0
        assert result.accepted_load == pytest.approx(0.2, abs=0.06)
