"""Correlated (whole-switch) failure tests."""

import pytest

from repro.faults.switches import (
    links_of_switches,
    switch_failure_order,
    updown_switch_tolerance,
    updown_switch_trial,
)


class TestLinksOfSwitches:
    def test_collects_incident_links(self, cft_4_3):
        root = cft_4_3.switch_id(2, 0)
        links = links_of_switches(cft_4_3, {root})
        assert len(links) == 4  # radix-4 root: 4 down-links
        assert all(root in (l.lo, l.hi) for l in links)

    def test_union_of_switches(self, cft_4_3):
        a = cft_4_3.switch_id(2, 0)
        b = cft_4_3.switch_id(2, 1)
        links = links_of_switches(cft_4_3, {a, b})
        assert len(links) == 8


class TestFailureOrder:
    def test_spares_leaves_by_default(self, cft_4_3):
        order = switch_failure_order(cft_4_3, rng=1)
        assert len(order) == cft_4_3.num_switches - cft_4_3.num_leaves
        assert min(order) >= cft_4_3.num_leaves

    def test_full_order_on_request(self, cft_4_3):
        order = switch_failure_order(cft_4_3, rng=1, spare_leaves=False)
        assert sorted(order) == list(range(cft_4_3.num_switches))

    def test_direct_networks_fail_everything(self, rrn_16):
        order = switch_failure_order(rrn_16, rng=2)
        assert sorted(order) == list(range(16))


class TestSwitchTolerance:
    def test_rfc_tolerates_some_fabric_loss(self, rfc_medium):
        result = updown_switch_tolerance(rfc_medium, trials=5, rng=3)
        assert result.mean_fraction > 0.0
        assert result.fabric_switches == (
            rfc_medium.num_switches - rfc_medium.num_leaves
        )

    def test_oft2_zero(self, oft_q2_l2):
        for seed in range(3):
            assert updown_switch_trial(oft_q2_l2, rng=seed) == 0

    def test_switch_faults_harsher_than_links(self, rfc_medium):
        """A switch takes its whole port bundle down, so the tolerated
        *fraction of elements* is lower than for independent links."""
        from repro.faults.updown_survival import updown_fault_tolerance

        links = updown_fault_tolerance(rfc_medium, trials=5, rng=4)
        switches = updown_switch_tolerance(rfc_medium, trials=5, rng=4)
        assert switches.mean_fraction <= links.mean_fraction + 0.05

    def test_rejects_zero_trials(self, rfc_medium):
        with pytest.raises(ValueError):
            updown_switch_tolerance(rfc_medium, trials=0)
