"""Unit tests for the ``repro.workloads`` layer.

Generators, schedules, FCT math, the tracker, the executor/cache
integration, the pooled-percentile merge, and the CLI subcommand.
"""

import math

import pytest

from repro.exec.cache import ResultCache, cache_key, topology_digest
from repro.exec.executor import Executor, SimTask
from repro.simulation.config import SimulationParams
from repro.simulation.replication import aggregate_replications
from repro.simulation.stats import SimResult, pooled_latency_percentile
from repro.topologies.base import FoldedClos
from repro.workloads import (
    WORKLOAD_NAMES,
    FixedRpcSizes,
    Flow,
    FlowSchedule,
    FlowTraffic,
    FlowTracker,
    LognormalMixSizes,
    ShuffleSizes,
    fct_percentile,
    fct_summary,
    ideal_fct,
    incast_flows,
    make_workload,
    poisson_flows,
    run_workload,
    shuffle_flows,
    workload_from_spec,
    workload_spec,
)

PARAMS = SimulationParams(measure_cycles=400, warmup_cycles=0, seed=1)


def dumbbell(hosts_per_leaf=4):
    return FoldedClos(
        level_sizes=[2, 1],
        up_adjacency=[[[0], [0]]],
        hosts_per_leaf=hosts_per_leaf,
        radix=2 + hosts_per_leaf,
        name="dumbbell",
    )


class TestFlowSchedule:
    def test_sorts_and_indexes(self):
        sched = FlowSchedule(
            [Flow(1, 0, 1, 2, 50), Flow(0, 2, 3, 1, 0)], 4
        )
        assert [f.flow_id for f in sched.flows] == [0, 1]
        assert sched.total_packets == 3
        # Serial -> owning flow index, packets in (start, flow_id) order.
        assert list(sched.flow_of_serial) == [0, 1, 1]

    def test_releases_one_entry_per_packet(self):
        sched = FlowSchedule([Flow(0, 1, 0, 3, 7)], 4)
        assert [len(row) for row in sched.releases] == [0, 3, 0, 0]
        assert [entry[0] for entry in sched.releases[1]] == [7, 7, 7]

    @pytest.mark.parametrize(
        "flow, message",
        [
            (Flow(0, 9, 1, 1, 0), "bad src"),
            (Flow(0, 0, 9, 1, 0), "bad dst"),
            (Flow(0, 2, 2, 1, 0), "src == dst"),
            (Flow(0, 0, 1, 0, 0), "empty flow"),
            (Flow(0, 0, 1, 1, -5), "negative start"),
        ],
    )
    def test_validation(self, flow, message):
        with pytest.raises(ValueError, match=message):
            FlowSchedule([flow], 4)

    def test_duplicate_flow_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate flow id"):
            FlowSchedule([Flow(0, 0, 1, 1, 0), Flow(0, 1, 2, 1, 3)], 4)

    def test_arrival_lists_clip_to_horizon(self):
        sched = FlowSchedule(
            [Flow(0, 0, 1, 1, 0), Flow(1, 0, 1, 1, 500)], 4
        )
        times, terms, dsts, serials = sched.arrival_lists(100)
        assert times == [0] and terms == [0]
        assert dsts == [1] and serials == [0]

    def test_flow_traffic_destination_is_off_limits(self):
        import random

        sched = FlowSchedule([Flow(0, 0, 1, 1, 0)], 4)
        traffic = FlowTraffic(sched)
        with pytest.raises(LookupError):
            traffic.destination(0, random.Random(0))


class TestGenerators:
    def test_make_workload_every_name(self):
        for name in WORKLOAD_NAMES:
            traffic = make_workload(name, 16, seed=3)
            assert traffic.name == f"flows:{name}"
            assert traffic.flow_schedule.flows

    def test_make_workload_unknown_name(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("bursty", 16)

    def test_poisson_calibration(self):
        sched = poisson_flows(
            32, sizes=FixedRpcSizes(4), duration=5_000, load=0.5, seed=1
        )
        assert sched.offered_load == 0.5
        implied = sched.estimated_load(16, 5_000)
        assert implied == pytest.approx(0.5, rel=0.15)

    def test_incast_pinned_workers(self):
        sched = incast_flows(
            16, fanin=3, size=2, events=1, aggregator=5,
            workers=[1, 2, 3], seed=0,
        )
        assert len(sched.flows) == 3
        assert {f.dst for f in sched.flows} == {5}
        assert {f.src for f in sched.flows} == {1, 2, 3}
        assert all(f.size == 2 for f in sched.flows)

    def test_incast_events_spaced_by_interval(self):
        sched = incast_flows(16, fanin=4, events=3, interval=100, seed=2)
        assert sorted({f.start for f in sched.flows}) == [0, 100, 200]

    def test_shuffle_partner_count(self):
        sched = shuffle_flows(8, partners=2, duration=100, seed=0)
        per_src = {}
        for f in sched.flows:
            per_src.setdefault(f.src, set()).add(f.dst)
        assert all(len(dsts) == 2 for dsts in per_src.values())

    def test_size_distributions_bounded(self):
        mix = LognormalMixSizes(max_size=64)
        rpc = FixedRpcSizes(4)
        shuffle = ShuffleSizes(32, 96)
        import random

        rng = random.Random(0)
        for _ in range(500):
            assert 1 <= mix.sample(rng) <= 64
            assert rpc.sample(rng) == 4
            assert 32 <= shuffle.sample(rng) <= 96

    def test_spec_roundtrip(self):
        spec = workload_spec("incast", fanin=4, rpc_size=2)
        assert spec == ("incast", (("fanin", 4), ("rpc_size", 2)))
        traffic = workload_from_spec(spec, 16, seed=9)
        direct = make_workload("incast", 16, seed=9, fanin=4, rpc_size=2)
        assert traffic.flow_schedule.flows == direct.flow_schedule.flows

    def test_spec_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown workload"):
            workload_spec("bursty")


class TestFctMath:
    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert fct_percentile(values, 0.50) == 50.0
        assert fct_percentile(values, 0.99) == 99.0
        assert fct_percentile(values, 1.0) == 100.0
        assert math.isnan(fct_percentile([], 0.5))

    def test_percentile_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            fct_percentile([1], 1.5)

    def test_ideal_fct(self):
        assert ideal_fct(3, 16) == 48

    def test_summary_values(self):
        summary = fct_summary(
            [(32, 2), (64, 2)], packet_phits=16, flows_total=3,
            flows_dropped=1,
        )
        assert summary["flows_total"] == 3
        assert summary["flows_completed"] == 2
        assert summary["flows_dropped"] == 1
        assert summary["packets"] == 4
        assert summary["fct_mean"] == 48.0
        assert summary["fct_max"] == 64.0
        assert summary["slowdown_mean"] == (1.0 + 2.0) / 2

    def test_summary_empty(self):
        summary = fct_summary([], packet_phits=16, flows_total=0)
        assert math.isnan(summary["fct_mean"])
        assert math.isnan(summary["fct_p99"])


class TestFlowTracker:
    def test_reset_between_runs(self):
        from repro.simulation.engine import Simulator

        topo = dumbbell(2)
        sched = FlowSchedule([Flow(0, 0, 2, 2, 0)], topo.num_terminals)
        tracker = FlowTracker(sched)
        for _ in range(2):
            Simulator(
                topo, FlowTraffic(sched), 0.5, PARAMS, observer=tracker
            ).run()
            records = tracker.fct_records()
            assert len(records) == 1

    def test_run_workload_surfaces_flow_stats(self):
        topo = dumbbell(2)
        workload = make_workload("rpc", topo.num_terminals, seed=1,
                                 load=0.3, duration=200, rpc_size=2)
        result = run_workload(topo, workload, PARAMS)
        assert result.flow_stats is not None
        assert result.flow_stats["flows_total"] == len(
            workload.flow_schedule.flows
        )


class TestCacheKeyPolicy:
    def _key(self, topo, **kwargs):
        return cache_key(
            topology_digest(topo), "uniform", 0.5, PARAMS, 3, **kwargs
        )

    def test_legacy_key_unchanged_without_workload(self, cft_4_3):
        assert self._key(cft_4_3) == self._key(cft_4_3, workload=None)

    def test_workload_enters_key(self, cft_4_3):
        spec = workload_spec("incast", fanin=4)
        assert self._key(cft_4_3, workload=spec) != self._key(cft_4_3)

    def test_spec_options_distinguish_keys(self, cft_4_3):
        a = self._key(cft_4_3, workload=workload_spec("incast", fanin=4))
        b = self._key(cft_4_3, workload=workload_spec("incast", fanin=8))
        c = self._key(cft_4_3, workload=workload_spec("incast", fanin=4))
        assert a != b
        assert a == c


class TestExecutorWorkloadTasks:
    def _task(self, topo, **overrides):
        spec = workload_spec("incast", fanin=4, rpc_size=2, events=2,
                             duration=100)
        base = dict(
            topo=topo, traffic_name="flows:incast", load=0.5,
            params=PARAMS, traffic_seed=7, workload=spec,
        )
        base.update(overrides)
        return SimTask(**base)

    def test_workload_task_matches_direct_run(self, cft_4_3):
        task = self._task(cft_4_3)
        results, report = Executor(workers=1).run_sim_tasks([task])
        assert report.computed == 1
        direct = run_workload(
            cft_4_3,
            workload_from_spec(task.workload, cft_4_3.num_terminals,
                               seed=task.traffic_seed),
            PARAMS,
        )
        assert results[0] == direct
        assert results[0].flow_stats == direct.flow_stats

    def test_workload_tasks_skip_cache_read_but_warm_it(
        self, cft_4_3, tmp_path
    ):
        cache = ResultCache(tmp_path)
        exe = Executor(workers=1, cache=cache)
        task = self._task(cft_4_3)

        first, report1 = exe.run_sim_tasks([task])
        assert report1.computed == 1 and report1.cache_hits == 0
        assert len(cache) == 1  # warmed

        second, report2 = exe.run_sim_tasks([task])
        # Flow stats are a cache-stripped side channel, so the task
        # recomputes (like collect_metrics) instead of replaying a
        # stats-less entry ...
        assert report2.computed == 1 and report2.cache_hits == 0
        assert second[0].flow_stats == first[0].flow_stats
        # ... and the core result is deterministic across runs.
        assert second[0] == first[0]

    def test_workload_entry_never_replayed_by_pattern_task(
        self, cft_4_3, tmp_path
    ):
        """A workload entry is keyed by its spec, so no pattern task
        (whose key has no ``workload`` payload) can ever replay it."""
        cache = ResultCache(tmp_path)
        exe = Executor(workers=1, cache=cache)
        exe.run_sim_tasks([self._task(cft_4_3)])
        assert len(cache) == 1
        pattern_task = SimTask(
            topo=cft_4_3, traffic_name="uniform", load=0.5,
            params=PARAMS, traffic_seed=7,
        )
        _, report = exe.run_sim_tasks([pattern_task])
        assert report.cache_hits == 0 and report.computed == 1


def _result_with_hist(hist, **overrides):
    base = dict(
        offered_load=0.5, accepted_load=0.4, avg_latency=20.0,
        avg_hops=4.0, generated_packets=100, delivered_packets=90,
        measured_packets=80, max_latency=77, p50_latency=30.0,
        p99_latency=60.0, traffic="uniform", topology="net",
        unroutable_packets=0, latency_hist=hist,
    )
    base.update(overrides)
    return SimResult(**base)


class TestPercentileMerge:
    """Satellite regression: percentile merging must pool, not average.

    Replication A saw 100 packets at latency 10; replication B saw 90
    at 10 plus a 10-packet tail at 1000.  Per-replication p99s are 10
    and 1000 -- their mean, 505, is a latency *no packet ever had*.
    The pooled sample (200 packets, 5% tail) has p99 = 1000.
    """

    HIST_A = ((10, 100),)
    HIST_B = ((10, 90), (1000, 10))

    def test_mean_of_p99s_is_not_pooled_p99(self):
        per_rep_p99 = [
            pooled_latency_percentile([h], 0.99)
            for h in (self.HIST_A, self.HIST_B)
        ]
        assert per_rep_p99 == [10.0, 1000.0]
        mean_of_p99s = sum(per_rep_p99) / 2
        pooled = pooled_latency_percentile(
            [self.HIST_A, self.HIST_B], 0.99
        )
        assert pooled == 1000.0
        assert mean_of_p99s == 505.0
        assert pooled != mean_of_p99s

    def test_aggregate_uses_pooled_percentiles(self):
        results = [
            _result_with_hist(self.HIST_A),
            _result_with_hist(self.HIST_B),
        ]
        agg = aggregate_replications(results, 0.5, "uniform", "net")
        assert agg.latency_p50 == 10.0
        assert agg.latency_p99 == 1000.0
        assert agg.latency_p999 == 1000.0

    def test_cached_histless_results_pool_to_nan(self):
        results = [_result_with_hist(None), _result_with_hist(None)]
        agg = aggregate_replications(results, 0.5, "uniform", "net")
        assert math.isnan(agg.latency_p99)

    def test_percentiles_excluded_from_equality(self):
        """Warm (cache-replayed, hist-less) and cold aggregates of the
        same point must still compare equal."""
        cold = aggregate_replications(
            [_result_with_hist(self.HIST_A)], 0.5, "uniform", "net"
        )
        warm = aggregate_replications(
            [_result_with_hist(None)], 0.5, "uniform", "net"
        )
        assert cold == warm
        assert cold.latency_p99 == 10.0
        assert math.isnan(warm.latency_p99)

    def test_mixed_none_hists_pool_available(self):
        pooled = pooled_latency_percentile([None, self.HIST_A], 0.5)
        assert pooled == 10.0

    def test_pooled_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            pooled_latency_percentile([self.HIST_A], 2.0)


class TestWorkloadCli:
    def test_incast_smoke(self, capsys):
        from repro.cli import main

        code = main([
            "workload", "--pattern", "incast", "--topology", "cft",
            "--radix", "4", "--levels", "3", "--cycles", "600",
            "--fanin", "4", "--rpc-size", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "FCT" in out
        assert "completed" in out

    def test_relaxed_mode_smoke(self, capsys):
        from repro.cli import main

        code = main([
            "workload", "--pattern", "rpc", "--topology", "cft",
            "--radix", "4", "--levels", "3", "--cycles", "600",
            "--rng-mode", "relaxed", "--load", "0.3",
        ])
        assert code == 0
        assert "FCT" in capsys.readouterr().out

    def test_trace_file_written(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        code = main([
            "workload", "--pattern", "incast", "--topology", "cft",
            "--radix", "4", "--levels", "3", "--cycles", "600",
            "--fanin", "4", "--rpc-size", "2", "--trace", str(trace),
        ])
        assert code == 0
        lines = trace.read_text().splitlines()
        assert lines
        import json

        assert all(
            json.loads(line)["ev"] == "flow_complete" for line in lines
        )
