"""Property tests for the replication seed-derivation contract.

The executor's determinism rests on two properties:

* replication seeds ``base + 1_000_003 * i`` never collide for any
  realistic replication count (``i < 10_000``), so no two replications
  of one point can share an engine or traffic RNG stream;
* traffic patterns are rebuilt inside each worker from their integer
  seed, so the *order* in which workers happen to construct them can
  never change any pattern.
"""

import random

import pytest

from repro.simulation.replication import SEED_STRIDE, replication_seed
from repro.simulation.traffic import make_traffic

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

BASE_SEEDS = st.integers(min_value=-(2**40), max_value=2**40)


class TestSeedDerivation:
    def test_no_collisions_below_10k(self):
        seeds = {replication_seed(0, i) for i in range(10_000)}
        assert len(seeds) == 10_000

    @given(base=BASE_SEEDS)
    @settings(max_examples=50, deadline=None)
    def test_no_collisions_any_base(self, base):
        indices = range(0, 10_000, 97)
        seeds = {replication_seed(base, i) for i in indices}
        assert len(seeds) == len(list(indices))

    @given(base=BASE_SEEDS, i=st.integers(0, 9_999), j=st.integers(0, 9_999))
    @settings(max_examples=100, deadline=None)
    def test_distinct_indices_distinct_seeds(self, base, i, j):
        if i == j:
            assert replication_seed(base, i) == replication_seed(base, j)
        else:
            assert replication_seed(base, i) != replication_seed(base, j)

    @given(base=BASE_SEEDS, i=st.integers(0, 9_998))
    @settings(max_examples=100, deadline=None)
    def test_traffic_seed_never_collides_with_engine_seeds(self, base, i):
        """Each replication's traffic seed (engine seed + 1) must not
        equal any other replication's engine seed: the stride is a
        prime > 1, so the offset-by-one stream stays disjoint."""
        traffic_seed = replication_seed(base, i) + 1
        engine_seeds = {replication_seed(base, j) for j in range(i + 2)}
        assert traffic_seed not in engine_seeds

    def test_stride_is_documented_constant(self):
        assert SEED_STRIDE == 1_000_003
        assert replication_seed(7, 3) == 7 + 3 * 1_000_003


class TestTrafficSchedulingIndependence:
    """Rebuilding a pattern from its seed is order-independent."""

    @given(seed=st.integers(0, 2**32), order=st.permutations(list(range(6))))
    @settings(max_examples=40, deadline=None)
    def test_fixed_random_targets_independent_of_build_order(
        self, seed, order
    ):
        seeds = [seed + replication_seed(0, i) + 1 for i in range(6)]
        reference = {
            s: make_traffic("fixed-random", 32, rng=s).target for s in seeds
        }
        shuffled = {
            seeds[k]: make_traffic("fixed-random", 32, rng=seeds[k]).target
            for k in order
        }
        assert shuffled == reference

    @given(seed=st.integers(0, 2**32), order=st.permutations(list(range(5))))
    @settings(max_examples=40, deadline=None)
    def test_random_pairing_independent_of_build_order(self, seed, order):
        seeds = [seed + replication_seed(0, i) + 1 for i in range(5)]
        reference = {
            s: make_traffic("random-pairing", 16, rng=s).partner for s in seeds
        }
        shuffled = {
            seeds[k]: make_traffic("random-pairing", 16, rng=seeds[k]).partner
            for k in order
        }
        assert shuffled == reference

    def test_shared_rng_object_would_not_be_order_independent(self):
        """Why tasks carry integer seeds, not Random objects: a shared
        stream consumed in a different order yields different patterns.
        (Documents the failure mode the executor design rules out.)"""
        rng = random.Random(0)
        first_then_second = [
            make_traffic("fixed-random", 32, rng=rng).target,
            make_traffic("fixed-random", 32, rng=rng).target,
        ]
        rng = random.Random(0)
        second_then_first = [
            make_traffic("fixed-random", 32, rng=rng).target,
            make_traffic("fixed-random", 32, rng=rng).target,
        ][::-1]
        assert first_then_second != second_then_first
