"""Orthogonal fat-tree construction tests."""

import pytest

from repro.core.ancestors import common_ancestors_of, has_updown_routing_of
from repro.graphs.metrics import leaf_diameter
from repro.routing.updown import UpDownRouter
from repro.topologies.base import NetworkError
from repro.topologies.oft import (
    oft_level_sizes,
    oft_order_for_radix,
    oft_radix,
    oft_switches,
    oft_terminals,
    oft_wires,
    orthogonal_fat_tree,
)


class TestConstruction:
    @pytest.mark.parametrize("q,levels", [(2, 2), (3, 2), (2, 3), (3, 3)])
    def test_matches_closed_forms(self, q, levels):
        topo = orthogonal_fat_tree(q, levels)
        assert topo.num_terminals == oft_terminals(q, levels)
        assert topo.level_sizes == oft_level_sizes(q, levels)
        assert topo.num_switches == oft_switches(q, levels)
        assert topo.num_links == oft_wires(q, levels)

    @pytest.mark.parametrize("q,levels", [(2, 2), (3, 2), (2, 3)])
    def test_radix_regular(self, q, levels):
        topo = orthogonal_fat_tree(q, levels)
        assert topo.is_radix_regular()
        assert topo.radix == 2 * (q + 1)

    def test_paper_terminal_formula(self):
        # T = 2 (q+1)(q^2+q+1)^(l-1); e.g. q=3, l=3: 2*4*169 = 1352.
        assert oft_terminals(3, 3) == 1_352

    def test_rejects_non_prime_power(self):
        with pytest.raises(NetworkError):
            orthogonal_fat_tree(6, 2)

    def test_rejects_single_level(self):
        with pytest.raises(NetworkError):
            orthogonal_fat_tree(2, 1)


class TestRoutingStructure:
    def test_updown_routable(self, oft_q2_l2, oft_q3_l3):
        assert has_updown_routing_of(oft_q2_l2)
        assert has_updown_routing_of(oft_q3_l3)

    def test_diameter_bound(self, oft_q2_l2):
        leaves = [
            oft_q2_l2.switch_id(0, i) for i in range(oft_q2_l2.num_leaves)
        ]
        assert leaf_diameter(oft_q2_l2.adjacency(), leaves) == 2

    def test_2level_minimal_routes_unique(self, oft_q2_l2):
        """Paper Section 3: minimal routes in the 2-level OFT are unique."""
        router = UpDownRouter.for_topology(oft_q2_l2)
        n1 = oft_q2_l2.num_leaves
        m = n1 // 2
        for a in range(n1):
            for b in range(a + 1, n1):
                # Leaves carrying the same projective point in the two
                # halves share q+1 ancestors; all other pairs exactly 1.
                width = router.ecmp_width(a, b)
                same_point = (a % m) == (b % m) and a != b
                if same_point:
                    assert width == 3  # q + 1 with q = 2
                else:
                    assert width == 1

    def test_common_ancestor_level(self, oft_q2_l2):
        level, ancestors = common_ancestors_of(oft_q2_l2, 0, 1)
        assert level == 1
        assert len(ancestors) >= 1


class TestOrderForRadix:
    def test_exact(self):
        assert oft_order_for_radix(8) == 3
        assert oft_order_for_radix(12) == 5
        assert oft_order_for_radix(36) == 17

    def test_non_prime_power_rounds_down(self):
        # radix 14 -> ideal order 6 -> prime power 5.
        assert oft_order_for_radix(14) == 5

    def test_radix_roundtrip(self):
        for q in (2, 3, 4, 5, 7):
            assert oft_order_for_radix(oft_radix(q)) == q

    def test_rejects_tiny(self):
        with pytest.raises(NetworkError):
            oft_order_for_radix(4)
