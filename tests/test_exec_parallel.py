"""Serial/parallel equivalence of the repro.exec executor.

The core determinism contract: for the same base seed, a sweep's
numbers are identical whether its points run in-process, across a
process pool of any size, or are replayed from the cache.
"""

import pytest

from repro.exec import Executor, build_executor, get_executor, using_executor
from repro.exec.executor import SimTask
from repro.experiments import fig8_scenario1
from repro.experiments.scenario_sim import run_scenario
from repro.faults.updown_survival import updown_fault_tolerance
from repro.simulation import SimulationParams, replicated_point

FAST = SimulationParams(measure_cycles=300, warmup_cycles=100, seed=5)


class TestReplicatedPointEquivalence:
    def test_parallel_matches_serial(self, cft_4_3):
        serial = replicated_point(
            cft_4_3, "uniform", 0.4, FAST, replications=3,
            executor=Executor(workers=1),
        )
        parallel = replicated_point(
            cft_4_3, "uniform", 0.4, FAST, replications=3,
            executor=Executor(workers=2),
        )
        assert serial == parallel

    def test_parallel_matches_serial_stateful_traffic(self, cft_4_3):
        """Random-pairing rebuilds its pairing per replication from the
        derived seed, so worker scheduling cannot change it."""
        serial = replicated_point(
            cft_4_3, "random-pairing", 0.6, FAST, replications=4,
            executor=Executor(workers=1),
        )
        parallel = replicated_point(
            cft_4_3, "random-pairing", 0.6, FAST, replications=4,
            executor=Executor(workers=3),
        )
        assert serial == parallel

    def test_ambient_executor_used_by_default(self, cft_4_3):
        reference = replicated_point(
            cft_4_3, "uniform", 0.4, FAST, replications=2
        )
        with using_executor(workers=2):
            assert get_executor().workers == 2
            ambient = replicated_point(
                cft_4_3, "uniform", 0.4, FAST, replications=2
            )
        assert reference == ambient


class TestSweepEquivalence:
    def test_scenario_sweep_rows_identical(self):
        kwargs = dict(
            quick=True, seed=0, loads=[0.3, 0.6], traffics=("uniform",),
            params=SimulationParams(
                measure_cycles=300, warmup_cycles=100, seed=0
            ),
            flow_check=False,
        )
        serial = run_scenario("equal-resources-11k", **kwargs)
        parallel = run_scenario(
            "equal-resources-11k", executor=Executor(workers=2), **kwargs
        )
        assert serial.rows == parallel.rows
        assert serial.headers == parallel.headers

    @pytest.mark.slow
    def test_fig8_quick_rows_identical(self):
        serial = fig8_scenario1.run(quick=True, seed=0)
        parallel = fig8_scenario1.run(
            quick=True, seed=0, executor=Executor(workers=2)
        )
        assert serial.rows == parallel.rows
        # Informational notes (timing) may differ; data notes must not.
        assert [n for n in serial.notes if not n.startswith("exec:")] == [
            n for n in parallel.notes if not n.startswith("exec:")
        ]
        assert any(n.startswith("exec:") for n in parallel.notes)


class TestFaultTrialEquivalence:
    def test_updown_tolerance_identical(self, rfc_small):
        serial = updown_fault_tolerance(
            rfc_small, trials=5, rng=3, executor=Executor(workers=1)
        )
        parallel = updown_fault_tolerance(
            rfc_small, trials=5, rng=3, executor=Executor(workers=2)
        )
        assert serial == parallel


class TestTaskOrdering:
    def test_results_follow_task_order(self, cft_4_3):
        """Completion order must never leak into result order."""
        loads = [0.2, 0.5, 0.8, 0.3]
        tasks = [
            SimTask(
                topo=cft_4_3, traffic_name="uniform", load=load,
                params=FAST, traffic_seed=7,
            )
            for load in loads
        ]
        results, report = Executor(workers=2).run_sim_tasks(tasks)
        assert [r.offered_load for r in results] == loads
        assert report.points == len(loads)
        assert report.computed == len(loads)
        assert report.cache_hits == 0

    def test_report_note_shape(self, cft_4_3):
        tasks = [
            SimTask(
                topo=cft_4_3, traffic_name="uniform", load=0.4,
                params=FAST, traffic_seed=7,
            )
        ]
        _, report = Executor().run_sim_tasks(tasks)
        note = report.note()
        assert note.startswith("exec: 1 points")
        assert "workers=1" in note


class TestBuildExecutor:
    def test_defaults_serial_cacheless(self):
        ex = build_executor()
        assert ex.workers == 1 and ex.cache is None

    def test_no_cache_flag_wins(self, tmp_path):
        ex = build_executor(workers=2, cache_dir=tmp_path, use_cache=False)
        assert ex.cache is None

    def test_worker_floor(self):
        assert Executor(workers=0).workers == 1
