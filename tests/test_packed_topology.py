"""Packed (CSR-native) topology path: round trips, generator
distribution, CSR invariants.

Three layers of evidence that the array-native extreme-scale path is
the same mathematical object as the reference:

* **round trips** -- ``PackedFoldedClos.from_folded`` /
  ``to_folded`` preserve every observable (links in reference order,
  terminal attachment, per-stage degrees) exactly;
* **distribution** -- the batched generator is not RNG-stream
  compatible with the pure-Python Steger--Wormald oracle, so
  equivalence is differential: over hundreds of pinned seeds the
  per-edge inclusion frequency of both engines must sit within
  binomial noise of the closed-form expectation (``d1 / n2`` for the
  bipartite stages, ``d / (n - 1)`` for regular graphs);
* **invariants** -- Hypothesis drives the CSR builders across the
  parameter space and asserts structure per seed: exact degrees,
  strictly sorted rows (hence no parallel edges), index ranges, and
  no self-loops for the regular variant.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.generate import (
    csr_rows_sorted,
    random_bipartite_csr,
    random_regular_csr,
)
from repro.core.rfc import radix_regular_rfc
from repro.topologies.packed import (
    PackedFoldedClos,
    packed_radix_regular_rfc,
    packed_random_folded_clos,
    stage_arrays_of,
)
from repro.topologies.random_graphs import (
    GenerationError,
    random_bipartite_graph,
)


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def reference(self):
        return radix_regular_rfc(8, 32, 3, rng=5)

    @pytest.fixture(scope="class")
    def packed(self, reference):
        return PackedFoldedClos.from_folded(reference)

    def test_links_exact_order(self, reference, packed):
        assert packed.links() == reference.links()
        assert np.array_equal(packed.links_array(), reference.links_array())

    def test_terminal_attachment(self, reference, packed):
        assert packed.num_terminals == reference.num_terminals
        for t in range(reference.num_terminals):
            assert packed.terminal_switch(t) == reference.terminal_switch(t)

    def test_per_stage_degrees(self, reference, packed):
        for level in range(reference.num_levels):
            for s in range(reference.level_sizes[level]):
                assert packed.up_degree(level, s) == reference.up_degree(
                    level, s
                )
                assert packed.down_degree(level, s) == reference.down_degree(
                    level, s
                )

    def test_neighbors_and_ids(self, reference, packed):
        for level in range(reference.num_levels):
            for s in range(reference.level_sizes[level]):
                assert packed.up_neighbors(level, s) == tuple(
                    reference.up_neighbors(level, s)
                )
                assert packed.down_neighbors(level, s) == tuple(
                    reference.down_neighbors(level, s)
                )
                assert packed.switch_id(level, s) == reference.switch_id(
                    level, s
                )

    def test_to_folded_closes_the_loop(self, reference, packed):
        back = packed.to_folded()
        assert back.level_sizes == reference.level_sizes
        assert back.hosts_per_leaf == reference.hosts_per_leaf
        assert back.links() == reference.links()
        assert stage_arrays_of(back)[0][1].tolist() == (
            stage_arrays_of(reference)[0][1].tolist()
        )

    def test_adjacency_matches(self, reference, packed):
        assert packed.adjacency() == reference.adjacency()

    def test_validate_and_regularity(self, packed):
        packed.validate()
        assert packed.is_radix_regular()


class TestGeneratorDistribution:
    """Differential validation against the pure-Python oracle.

    With ``n1=8, d1=2, n2=4, d2=4`` every left vertex picks 2 of 4
    right vertices, so each of the 32 (u, v) pairs is an edge with
    probability exactly 1/2 in the uniform pairing model.  Counting
    inclusions over many seeds gives a Binomial(seeds, 1/2) per pair;
    both engines must stay within 5 sigma of the mean -- the same
    window the reference itself needs -- and within sampling noise of
    each other.
    """

    N1, D1, N2, D2 = 8, 2, 4, 4
    SEEDS = 300

    def _accel_counts(self):
        counts = np.zeros((self.N1, self.N2), dtype=np.int64)
        for seed in range(self.SEEDS):
            off, idx = random_bipartite_csr(
                self.N1, self.D1, self.N2, self.D2, rng=seed
            )
            for u in range(self.N1):
                counts[u, idx[off[u]:off[u + 1]]] += 1
        return counts

    def _reference_counts(self):
        counts = np.zeros((self.N1, self.N2), dtype=np.int64)
        for seed in range(self.SEEDS):
            left, _right = random_bipartite_graph(
                self.N1, self.D1, self.N2, self.D2, rng=seed
            )
            for u, row in enumerate(left):
                counts[u, sorted(row)] += 1
        return counts

    def test_per_edge_inclusion_matches_closed_form(self):
        expect = self.SEEDS * self.D1 / self.N2
        sigma = (self.SEEDS * 0.5 * 0.5) ** 0.5
        for counts in (self._accel_counts(), self._reference_counts()):
            assert np.all(np.abs(counts - expect) < 5 * sigma)

    def test_engines_agree_with_each_other(self):
        diff = np.abs(self._accel_counts() - self._reference_counts())
        # Two independent Binomial(SEEDS, 1/2) samples differ by less
        # than 7 sigma of their difference distribution.
        sigma = (2 * self.SEEDS * 0.25) ** 0.5
        assert np.max(diff) < 7 * sigma

    def test_regular_mean_degree_is_exact(self):
        n, degree = 10, 3
        for seed in (0, 1, 2, 3, 4):
            off, idx = random_regular_csr(n, degree, rng=seed)
            assert np.array_equal(np.diff(off), np.full(n, degree))
            # Symmetry: (u, v) present iff (v, u) present.
            pairs = {(u, v) for u in range(n)
                     for v in idx[off[u]:off[u + 1]]}
            assert all((v, u) in pairs for u, v in pairs)


@st.composite
def bipartite_params(draw):
    """Feasible ``(n1, d1, n2, d2)`` with matching degree sums."""
    n2 = draw(st.integers(min_value=1, max_value=12))
    d1 = draw(st.integers(min_value=0, max_value=n2))
    scale = draw(st.integers(min_value=1, max_value=4))
    n1 = n2 * scale
    # n1 * d1 == n2 * (d1 * scale) always balances, and
    # d2 = d1 * scale <= n2 * scale = n1 keeps the config feasible.
    return n1, d1, n2, d1 * scale


class TestCsrInvariants:
    @settings(deadline=None, max_examples=60)
    @given(params=bipartite_params(), seed=st.integers(0, 2**32 - 1))
    def test_bipartite_structure(self, params, seed):
        n1, d1, n2, d2 = params
        off, idx = random_bipartite_csr(n1, d1, n2, d2, rng=seed)
        assert off.dtype == np.int64 and idx.dtype == np.int32
        assert off.shape == (n1 + 1,) and off[0] == 0
        assert np.array_equal(np.diff(off), np.full(n1, d1))
        assert csr_rows_sorted(off, idx)  # sorted => no parallels
        if idx.size:
            assert idx.min() >= 0 and idx.max() < n2
        # Right-side degrees are exact too.
        assert np.array_equal(
            np.bincount(idx, minlength=n2), np.full(n2, d2)
        )

    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(min_value=2, max_value=24),
        degree=st.integers(min_value=0, max_value=6),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_regular_structure(self, n, degree, seed):
        if degree >= n or (n * degree) % 2:
            return
        try:
            off, idx = random_regular_csr(n, degree, rng=seed)
        except GenerationError:
            # Tiny dense cases can genuinely wedge out of restarts.
            return
        assert np.array_equal(np.diff(off), np.full(n, degree))
        assert csr_rows_sorted(off, idx)
        for u in range(n):
            assert u not in idx[off[u]:off[u + 1]]  # no self-loops


class TestPackedBuilders:
    def test_packed_radix_regular_matches_reference_shape(self):
        packed = packed_radix_regular_rfc(8, 32, 3, rng=9)
        reference = radix_regular_rfc(8, 32, 3, rng=9)
        assert packed.level_sizes == reference.level_sizes
        assert packed.num_terminals == reference.num_terminals
        assert packed.num_links == reference.num_links
        assert packed.is_radix_regular()
        packed.validate()

    def test_packed_random_folded_clos_requires_rng(self):
        with pytest.raises(TypeError):
            packed_random_folded_clos([4, 2], [2], 4)

    def test_generation_error_propagates(self):
        with pytest.raises(GenerationError):
            packed_random_folded_clos([3, 2], [4], 1, rng=0)
