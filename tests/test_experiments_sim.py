"""Simulation-scenario experiment tests (trimmed loads to stay fast)."""

import pytest

from repro.experiments.scenario_sim import build_networks, run_scenario


class TestBuildNetworks:
    @pytest.mark.parametrize(
        "name", ["equal-resources-11k", "intermediate-100k", "maximum-200k"]
    )
    def test_quick_networks_valid(self, name):
        networks = build_networks(name, quick=True, seed=0)
        networks.cft.validate()
        networks.rfc.validate()
        assert networks.rfc.num_levels == 3

    def test_equal_resources_match(self):
        networks = build_networks("equal-resources-11k", quick=True, seed=0)
        assert networks.cft.num_terminals == networks.rfc.num_terminals
        assert networks.cft.num_levels == networks.rfc.num_levels

    def test_intermediate_cft_has_extra_level(self):
        networks = build_networks("intermediate-100k", quick=True, seed=0)
        assert networks.cft.num_levels == networks.rfc.num_levels + 1

    def test_full_scenario1_has_alt_rfc(self):
        networks = build_networks("equal-resources-11k", quick=False, seed=0)
        assert networks.rfc_alt is not None
        assert networks.rfc_alt.radix < networks.rfc.radix
        # Nearly the same terminal count with smaller switches.
        ratio = networks.rfc_alt.num_terminals / networks.rfc.num_terminals
        assert 0.95 < ratio <= 1.0


class TestScenarioSweep:
    def test_single_load_runs(self):
        table = run_scenario(
            "equal-resources-11k",
            quick=True,
            seed=0,
            loads=[0.4],
            traffics=("uniform",),
        )
        assert len(table.rows) == 1
        by = dict(zip(table.headers, table.rows[0]))
        assert by["CFT accepted"] == pytest.approx(0.4, abs=0.08)
        assert by["RFC accepted"] == pytest.approx(0.4, abs=0.08)

    def test_uniform_near_parity_at_saturation(self):
        table = run_scenario(
            "equal-resources-11k",
            quick=True,
            seed=0,
            loads=[1.0],
            traffics=("uniform",),
        )
        by = dict(zip(table.headers, table.rows[0]))
        assert abs(by["CFT accepted"] - by["RFC accepted"]) < 0.12

    def test_flow_level_notes_present(self):
        table = run_scenario(
            "equal-resources-11k",
            quick=True,
            seed=0,
            loads=[0.3],
            traffics=("random-pairing",),
        )
        assert any("flow-level" in note for note in table.notes)
