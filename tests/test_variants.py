"""Tests for Definition 4.1 variants (random k-ary trees, Hashnet),
latency percentiles and replicated runs."""

import math

import pytest

from repro.core.ancestors import has_updown_routing_of
from repro.core.rfc import hashnet, random_k_ary_tree
from repro.simulation.config import SimulationParams
from repro.simulation.packet import Packet
from repro.simulation.replication import replicated_point
from repro.simulation.stats import SimStats
from repro.topologies.base import NetworkError

FAST = SimulationParams(measure_cycles=400, warmup_cycles=150, seed=0)


class TestRandomKAryTree:
    def test_structure_matches_deterministic(self):
        from repro.topologies.fattree import k_ary_l_tree

        deterministic = k_ary_l_tree(3, 3)
        randomized = random_k_ary_tree(3, 3, rng=1)
        assert randomized.level_sizes == deterministic.level_sizes
        assert randomized.num_terminals == deterministic.num_terminals
        assert randomized.num_links == deterministic.num_links

    def test_random_wiring_differs_by_seed(self):
        a = random_k_ary_tree(3, 3, rng=1)
        b = random_k_ary_tree(3, 3, rng=2)
        assert a.links() != b.links()

    def test_large_k_usually_routable(self):
        # k=4, 2 levels: 4 leaves, each wired to all 4 top switches
        # would be complete; random wiring with k=4 up-links over 4
        # tops IS complete -> always routable.
        topo = random_k_ary_tree(4, 2, rng=3)
        assert has_updown_routing_of(topo)

    def test_rejects_degenerate(self):
        with pytest.raises(NetworkError):
            random_k_ary_tree(1, 3)
        with pytest.raises(NetworkError):
            random_k_ary_tree(3, 1)


class TestHashnet:
    def test_level_structure(self):
        net = hashnet(10, 4, 3, rng=1)
        assert net.level_sizes == [10, 10, 10]
        assert net.hosts_per_leaf == 4
        assert net.num_terminals == 40
        # Every switch: 4 up + 4 down (terminals at leaves).
        for level in range(2):
            for s in range(10):
                assert net.up_degree(level, s) == 4

    def test_roots_have_degree_d(self):
        net = hashnet(8, 3, 2, rng=2)
        for s in range(8):
            assert len(net.down_neighbors(1, s)) == 3

    def test_rejects_bad_params(self):
        with pytest.raises(NetworkError):
            hashnet(1, 1, 2)
        with pytest.raises(NetworkError):
            hashnet(4, 5, 2)
        with pytest.raises(NetworkError):
            hashnet(4, 2, 1)


class TestLatencyPercentiles:
    def test_percentile_math(self):
        stats = SimStats(warmup=0, horizon=1000)
        for latency in (10, 20, 30, 40, 100):
            packet = Packet(0, 1, created=0)
            stats.on_delivered(packet, latency, packet_phits=16)
        assert stats.latency_percentile(0.0) == 10
        assert stats.latency_percentile(0.5) == 30
        assert stats.latency_percentile(1.0) == 100

    def test_empty_is_nan(self):
        stats = SimStats(warmup=0, horizon=10)
        assert math.isnan(stats.latency_percentile(0.5))

    def test_rejects_out_of_range(self):
        stats = SimStats(warmup=0, horizon=10)
        with pytest.raises(ValueError):
            stats.latency_percentile(1.5)

    def test_simresult_carries_percentiles(self, cft_8_3):
        from repro.simulation.engine import simulate
        from repro.simulation.traffic import make_traffic

        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=1)
        result = simulate(cft_8_3, traffic, 0.4, FAST)
        assert result.p50_latency <= result.p99_latency <= result.max_latency
        assert result.p50_latency <= result.avg_latency * 1.5


class TestReplication:
    def test_aggregates(self, cft_8_3):
        agg = replicated_point(cft_8_3, "uniform", 0.3, FAST, replications=3)
        assert agg.replications == 3
        assert len(agg.results) == 3
        assert agg.accepted_mean == pytest.approx(0.3, abs=0.06)
        assert agg.accepted_stdev >= 0.0
        assert "load" in agg.row()

    def test_replications_differ(self, cft_8_3):
        agg = replicated_point(cft_8_3, "uniform", 0.5, FAST, replications=3)
        accepted = [r.accepted_load for r in agg.results]
        assert len(set(accepted)) > 1

    def test_deterministic_aggregate(self, cft_8_3):
        a = replicated_point(cft_8_3, "uniform", 0.3, FAST, replications=2)
        b = replicated_point(cft_8_3, "uniform", 0.3, FAST, replications=2)
        assert a.accepted_mean == b.accepted_mean

    def test_rejects_zero(self, cft_8_3):
        with pytest.raises(ValueError):
            replicated_point(cft_8_3, "uniform", 0.3, FAST, replications=0)
