"""Packet-trace cross-validation: engine hops obey up/down routing."""

import pytest

from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.traffic import make_traffic

FAST = SimulationParams(measure_cycles=400, warmup_cycles=100, seed=4)


def trace_switch_path(topo, trace):
    """Extract the sequence of switch flat-ids from a hop trace."""
    path = []
    for _, kind, peer in trace:
        if kind == "generate":
            path.append(topo.terminal_switch(peer))
        elif kind == "forward":
            path.append(peer)
    return path


class TestTraces:
    def test_traces_recorded(self, rfc_medium):
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=1)
        sim = Simulator(rfc_medium, traffic, 0.3, FAST, trace_limit=20)
        sim.run()
        assert 0 < len(sim.traces) <= 20

    def test_traces_are_updown_paths(self, rfc_medium):
        """Every traced packet must rise monotonically then fall."""
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=2)
        sim = Simulator(rfc_medium, traffic, 0.3, FAST, trace_limit=40)
        sim.run()
        checked = 0
        for trace in sim.traces.values():
            if trace[-1][1] != "eject":
                continue  # still in flight at horizon
            switches = trace_switch_path(rfc_medium, trace)
            levels = [rfc_medium.switch_level(s)[0] for s in switches]
            apex = levels.index(max(levels))
            assert levels[: apex + 1] == sorted(levels[: apex + 1])
            assert levels[apex:] == sorted(levels[apex:], reverse=True)
            checked += 1
        assert checked > 5

    def test_traced_hops_are_real_links(self, cft_8_3):
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=3)
        sim = Simulator(cft_8_3, traffic, 0.3, FAST, trace_limit=30)
        sim.run()
        adjacency = cft_8_3.adjacency()
        for trace in sim.traces.values():
            switches = trace_switch_path(cft_8_3, trace)
            for a, b in zip(switches, switches[1:]):
                assert b in adjacency[a]

    def test_eject_matches_destination(self, cft_8_3):
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=5)
        sim = Simulator(cft_8_3, traffic, 0.3, FAST, trace_limit=30)
        sim.run()
        for trace in sim.traces.values():
            ejects = [entry for entry in trace if entry[1] == "eject"]
            if not ejects:
                continue
            assert len(ejects) == 1

    def test_timestamps_monotone(self, rfc_medium):
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=6)
        sim = Simulator(rfc_medium, traffic, 0.5, FAST, trace_limit=25)
        sim.run()
        for trace in sim.traces.values():
            times = [t for t, _, _ in trace]
            assert times == sorted(times)

    def test_no_traces_by_default(self, cft_8_3):
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=7)
        sim = Simulator(cft_8_3, traffic, 0.3, FAST)
        sim.run()
        assert sim.traces == {}

    def test_valiant_trace_visits_intermediate(self, rfc_medium):
        traffic = make_traffic(
            "random-pairing", rfc_medium.num_terminals, rng=8
        )
        sim = Simulator(
            rfc_medium, traffic, 0.2, FAST.scaled(valiant=True),
            trace_limit=40,
        )
        sim.run()
        # At least one completed trace should touch level 0 strictly
        # between injection and ejection (the Valiant waypoint).
        waypoint_seen = False
        for trace in sim.traces.values():
            if trace[-1][1] != "eject":
                continue
            switches = trace_switch_path(rfc_medium, trace)
            levels = [rfc_medium.switch_level(s)[0] for s in switches]
            if 0 in levels[1:-1]:
                waypoint_seen = True
                break
        assert waypoint_seen
