"""Path-diversity census and engine utilization tests."""

import pytest

from repro.routing.diversity import (
    ecmp_width_histogram,
    path_diversity_census,
)
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.traffic import make_traffic

FAST = SimulationParams(measure_cycles=600, warmup_cycles=200, seed=1)


class TestDiversityCensus:
    def test_oft_unique_routes(self, oft_q2_l2):
        """Paper Section 3: 2-level OFT minimal routes are unique
        (except same-point cross-half pairs)."""
        census = path_diversity_census(oft_q2_l2, sample_pairs=500, rng=1)
        assert census.min_width == 1
        assert census.unique_route_fraction > 0.8

    def test_cft_width_formula(self, cft_4_3):
        """CFT cross-pod pairs have Delta^(l-1) = 4 routes; same-pod 2."""
        histogram = ecmp_width_histogram(cft_4_3, sample_pairs=10_000, rng=2)
        assert set(histogram) == {2, 4}

    def test_rfc_has_spread(self, rfc_medium):
        histogram = ecmp_width_histogram(rfc_medium, sample_pairs=150, rng=3)
        assert len(histogram) > 1  # random wiring -> width distribution

    def test_rfc_beats_oft_diversity(self, rfc_medium, oft_q2_l2):
        rfc = path_diversity_census(rfc_medium, sample_pairs=150, rng=4)
        oft = path_diversity_census(oft_q2_l2, sample_pairs=150, rng=4)
        assert rfc.mean_width > oft.mean_width

    def test_describe_renders(self, cft_4_3):
        text = path_diversity_census(cft_4_3, rng=5).describe()
        assert "pairs" in text

    def test_small_topology_enumerates_all_pairs(self, cft_4_3):
        histogram = ecmp_width_histogram(cft_4_3, sample_pairs=10_000)
        n1 = cft_4_3.num_leaves
        assert sum(histogram.values()) == n1 * (n1 - 1) // 2


class TestUtilization:
    def test_bounded_by_capacity(self, cft_8_3):
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=1)
        sim = Simulator(cft_8_3, traffic, 0.8, FAST)
        sim.run()
        util = sim.link_utilization()
        assert 0.0 < util["mean"] <= 1.0 + 1e-9
        assert util["max"] <= 1.0 + 1e-9
        assert util["p95"] <= util["max"]

    def test_scales_with_load(self, cft_8_3):
        means = []
        for load in (0.2, 0.6):
            traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=2)
            sim = Simulator(cft_8_3, traffic, load, FAST)
            sim.run()
            means.append(sim.link_utilization()["mean"])
        assert means[1] > 1.5 * means[0]

    def test_hotspot_saturates_ejection(self, cft_8_3):
        traffic = make_traffic("fixed-random", cft_8_3.num_terminals, rng=3)
        sim = Simulator(cft_8_3, traffic, 1.0, FAST)
        sim.run()
        assert max(sim.ejection_utilization()) > 0.8

    def test_inject_queue_grows_at_saturation(self, cft_8_3):
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=4)
        sim = Simulator(cft_8_3, traffic, 1.0, FAST)
        sim.run()
        assert sim.max_inject_queue >= 2
