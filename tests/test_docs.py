"""Documentation integrity tests."""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


class TestDocsExist:
    def test_required_files(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/THEORY.md", "docs/SIMULATOR.md", "docs/API.md",
                     "LICENSE", "CHANGELOG.md"):
            assert (ROOT / name).exists(), name

    def test_readme_mentions_all_examples(self):
        readme = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in readme, script.name

    def test_design_inventory_mentions_every_subpackage(self):
        design = (ROOT / "DESIGN.md").read_text()
        for pkg in ("core", "topologies", "graphs", "routing",
                    "simulation", "faults", "cost", "experiments"):
            assert pkg in design


class TestApiDocGenerator:
    def test_document_module_output(self):
        sys.path.insert(0, str(ROOT / "scripts"))
        try:
            from gen_api_docs import document_module
        finally:
            sys.path.pop(0)
        lines = document_module("repro.core.theory")
        text = "\n".join(lines)
        assert "threshold_radix" in text
        assert "updown_probability" in text

    def test_api_md_covers_core_symbols(self):
        api = (ROOT / "docs" / "API.md").read_text()
        for symbol in ("radix_regular_rfc", "UpDownRouter", "Simulator",
                       "disconnection_fraction", "orthogonal_fat_tree"):
            assert symbol in api, symbol
