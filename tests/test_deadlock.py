"""Channel-dependency-graph deadlock analysis tests.

These verify the paper's routing claims formally (Section 1/4.1):
up/down routing on any folded Clos is deadlock-free without virtual
channels; minimal routing on cyclic direct networks is not; distance-
class VCs restore acyclicity.
"""

import pytest

from repro.routing.deadlock import (
    distance_class_dependency_graph,
    has_cycle,
    minimal_ecmp_dependency_graph,
    updown_dependency_graph,
)
from repro.topologies.base import DirectNetwork


def ring(n=8):
    return DirectNetwork(
        [[(i - 1) % n, (i + 1) % n] for i in range(n)],
        hosts_per_switch=1,
        name="ring",
    )


class TestHasCycle:
    def test_dag(self):
        graph = {1: {2, 3}, 2: {3}, 3: set()}
        assert not has_cycle(graph)

    def test_self_loop(self):
        assert has_cycle({1: {1}})

    def test_long_cycle(self):
        graph = {i: {(i + 1) % 5} for i in range(5)}
        assert has_cycle(graph)

    def test_empty(self):
        assert not has_cycle({})


class TestUpDownAcyclic:
    def test_cft(self, cft_8_3):
        assert not has_cycle(updown_dependency_graph(cft_8_3))

    def test_rfc(self, rfc_medium):
        assert not has_cycle(updown_dependency_graph(rfc_medium))

    def test_oft(self, oft_q3_l3):
        assert not has_cycle(updown_dependency_graph(oft_q3_l3))

    def test_two_level(self, oft_q2_l2):
        assert not has_cycle(updown_dependency_graph(oft_q2_l2))

    def test_channel_count(self, cft_4_3):
        graph = updown_dependency_graph(cft_4_3)
        # Two directed dependency nodes per physical cable.
        assert len(graph) == 2 * cft_4_3.num_links

    def test_turns_exist(self, cft_4_3):
        """Ascent -> descent turns must be present (routes do turn)."""
        graph = updown_dependency_graph(cft_4_3)
        turns = sum(
            1
            for src, dsts in graph.items()
            if src[0] == "up" and any(d[0] == "down" for d in dsts)
        )
        assert turns > 0


class TestDirectNetworksCyclic:
    def test_ring_minimal_routing_deadlock_prone(self):
        """The textbook case: minimal routing on a ring has CDG cycles."""
        assert has_cycle(minimal_ecmp_dependency_graph(ring()))

    def test_rrn_deadlock_prone(self, rrn_16):
        """Paper Section 1: direct random networks embed cycles."""
        assert has_cycle(minimal_ecmp_dependency_graph(rrn_16))

    def test_tree_is_fine(self):
        # A direct network that happens to be a tree cannot cycle.
        star = DirectNetwork(
            [[1, 2, 3], [0], [0], [0]], hosts_per_switch=1
        )
        assert not has_cycle(minimal_ecmp_dependency_graph(star))


class TestDistanceClassVCs:
    def test_enough_classes_break_cycles(self, rrn_16):
        from repro.routing.table import EcmpTableRouter

        longest = EcmpTableRouter.for_network(rrn_16).max_route_length(
            list(range(rrn_16.num_switches))
        )
        graph = distance_class_dependency_graph(rrn_16, longest + 1)
        assert not has_cycle(graph)

    def test_single_class_still_cyclic(self, rrn_16):
        assert has_cycle(distance_class_dependency_graph(rrn_16, 1))

    def test_ring_with_classes(self):
        net = ring(6)  # diameter 3
        assert not has_cycle(distance_class_dependency_graph(net, 4))

    def test_rejects_zero_classes(self, rrn_16):
        with pytest.raises(ValueError):
            distance_class_dependency_graph(rrn_16, 0)
