"""Extended traffic patterns and per-stage utilization tests."""

import random
from collections import Counter

import pytest

from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.traffic import (
    EXTENDED_TRAFFIC_NAMES,
    LocalityTraffic,
    ShuffleTraffic,
    make_traffic,
)

FAST = SimulationParams(measure_cycles=500, warmup_cycles=150, seed=2)


class TestLocalityTraffic:
    def test_stays_local_mostly(self):
        traffic = LocalityTraffic(32, group_size=4, locality=0.9)
        rng = random.Random(1)
        local = 0
        for _ in range(1_000):
            dest = traffic.destination(5, rng)
            assert dest != 5
            if dest // 4 == 1:
                local += 1
        assert local > 700

    def test_zero_locality_is_uniform(self):
        traffic = LocalityTraffic(16, group_size=4, locality=0.0)
        rng = random.Random(2)
        groups = Counter(
            traffic.destination(0, rng) // 4 for _ in range(2_000)
        )
        assert len(groups) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalityTraffic(8, group_size=0)
        with pytest.raises(ValueError):
            LocalityTraffic(8, locality=1.5)

    def test_local_traffic_cheaper_on_clos(self, cft_8_3):
        """Rack-local traffic takes fewer hops than uniform."""
        from repro.simulation.engine import simulate

        local = LocalityTraffic(
            cft_8_3.num_terminals,
            group_size=cft_8_3.hosts_per_leaf,
            locality=0.8,
        )
        uniform = make_traffic("uniform", cft_8_3.num_terminals, rng=3)
        r_local = simulate(cft_8_3, local, 0.4, FAST)
        r_uniform = simulate(cft_8_3, uniform, 0.4, FAST)
        assert r_local.avg_hops < r_uniform.avg_hops


class TestShuffleTraffic:
    def test_instantaneous_permutation(self):
        traffic = ShuffleTraffic(8)
        rng = random.Random(4)
        first_round = [traffic.destination(s, rng) for s in range(8)]
        assert sorted(first_round) == sorted((s + 1) % 8 for s in range(8))

    def test_covers_all_destinations_over_time(self):
        traffic = ShuffleTraffic(6)
        rng = random.Random(5)
        seen = {traffic.destination(2, rng) for _ in range(10)}
        assert seen == {0, 1, 3, 4, 5}

    def test_never_self(self):
        traffic = ShuffleTraffic(5)
        rng = random.Random(6)
        for _ in range(25):
            for s in range(5):
                assert traffic.destination(s, rng) != s

    def test_simulates(self, cft_8_3):
        from repro.simulation.engine import simulate

        traffic = make_traffic("shuffle", cft_8_3.num_terminals)
        result = simulate(cft_8_3, traffic, 0.5, FAST)
        assert result.accepted_load == pytest.approx(0.5, abs=0.1)


class TestFactoryExtended:
    def test_all_names(self):
        for name in EXTENDED_TRAFFIC_NAMES:
            assert make_traffic(name, 16, rng=0).name == name


class TestStageUtilization:
    def test_keys_and_bounds(self, rfc_medium):
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=7)
        sim = Simulator(rfc_medium, traffic, 0.7, FAST)
        sim.run()
        stages = sim.stage_utilization()
        assert set(stages) == {"0->1 up", "1->0 down", "1->2 up", "2->1 down"}
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in stages.values())

    def test_rfc_loads_stages_evenly_under_uniform(self, rfc_medium):
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=8)
        sim = Simulator(rfc_medium, traffic, 0.6, FAST)
        sim.run()
        stages = sim.stage_utilization()
        values = list(stages.values())
        assert max(values) < 2.5 * min(values)

    def test_direct_network_rejected(self, rrn_16):
        traffic = make_traffic("uniform", rrn_16.num_terminals, rng=9)
        sim = Simulator(rrn_16, traffic, 0.3, FAST)
        sim.run()
        with pytest.raises(ValueError):
            sim.stage_utilization()
