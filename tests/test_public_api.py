"""Public API surface tests: documented entry points exist and work."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.topologies",
            "repro.graphs",
            "repro.routing",
            "repro.simulation",
            "repro.faults",
            "repro.cost",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestReadmeSnippets:
    def test_quickstart_snippet(self):
        """The README quickstart must keep working verbatim."""
        from repro import rfc_with_updown, rfc_max_leaves, UpDownRouter
        from repro.simulation import (
            SimulationParams,
            make_traffic,
            simulate,
        )

        assert rfc_max_leaves(12, 3) == 238
        topo, _ = rfc_with_updown(radix=12, n1=120, levels=3, rng=42)
        router = UpDownRouter.for_topology(topo)
        path = router.path(0, 119, rng=1)
        assert path[0] == (0, 0) and path[-1] == (0, 119)
        params = SimulationParams(measure_cycles=300, warmup_cycles=100)
        traffic = make_traffic("uniform", topo.num_terminals, rng=7)
        row = simulate(topo, traffic, load=0.6, params=params).row()
        assert "accepted" in row

    def test_docstring_example(self):
        """The package docstring example."""
        from repro import rfc_with_updown, UpDownRouter

        topo, attempts = rfc_with_updown(radix=12, n1=24, levels=3, rng=1)
        router = UpDownRouter.for_topology(topo)
        assert router.path(0, 17, rng=1)


class TestExperimentRegistryDocs:
    def test_every_experiment_has_docstring(self):
        import repro.experiments as exps

        for name, runner in exps.EXPERIMENTS.items():
            module = importlib.import_module(runner.__module__)
            assert module.__doc__, f"{name} module lacks a docstring"

    def test_design_md_mentions_every_experiment(self):
        from pathlib import Path

        import repro.experiments as exps

        design = Path(__file__).resolve().parent.parent / "DESIGN.md"
        text = design.read_text()
        for name in exps.EXPERIMENTS:
            if name == "sec42":
                continue  # extension row uses its full id in the table
            assert f"`{name}`" in text, name
