"""Table/report rendering edge cases."""

import math

from repro.experiments.common import Table, format_cell


class TestEmptyAndEdgeTables:
    def test_render_empty_table(self):
        table = Table("empty", ["a", "b"])
        text = table.render()
        assert "empty" in text
        assert "a" in text and "b" in text

    def test_csv_empty(self):
        table = Table("empty", ["a", "b"])
        assert table.to_csv().startswith("a,b")

    def test_csv_none_cells_blank(self):
        table = Table("t", ["a", "b"])
        table.add(1, None)
        assert "1," in table.to_csv()

    def test_render_wide_numbers_align(self):
        table = Table("t", ["n"])
        table.add(1)
        table.add(1_000_000)
        lines = table.render().splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestFormatCell:
    def test_large_float_groups_digits(self):
        assert format_cell(1234.5) == "1,235" or "," in format_cell(1234.5)

    def test_small_float_trims_zeros(self):
        assert format_cell(0.25) == "0.25"
        assert format_cell(2.0) == "2"

    def test_nan(self):
        assert format_cell(float("nan")) == "-"

    def test_bool_before_int(self):
        # bool is an int subclass; must render as yes/no, not 1/0.
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_string_passthrough(self):
        assert format_cell("CFT") == "CFT"


class TestSimResultRow:
    def test_row_contains_metrics(self):
        from repro.simulation.stats import SimResult, SimStats

        stats = SimStats(warmup=0, horizon=100)
        result = SimResult.from_stats(stats, 0.5, 16, "uniform", "net")
        row = result.row()
        assert "net" in row and "uniform" in row and "0.50" in row

    def test_nan_latency_rendered(self):
        from repro.simulation.stats import SimResult, SimStats

        stats = SimStats(warmup=0, horizon=100)
        result = SimResult.from_stats(stats, 0.5, 16, "uniform", "net")
        assert math.isnan(result.avg_latency)
        assert "nan" in result.row().lower()
