"""Statistical equivalence of the relaxed engine vs the exact engines.

The relaxed engine trades the exact engines' bit-for-bit contract for
a counter-based keyed RNG (:mod:`repro.accel.rng`), so its validation
is distributional: paired replication sweeps must agree on saturation
throughput, accepted-load means and latency distributions.  Three
pinned scenarios cover the paper's claims:

* the fig-8 working point -- uniform traffic on the canonical small
  RFC at 0.7 load;
* an adversarial scenario -- random-pairing (a worst-ish-case
  permutation workload) at 0.6 load;
* saturation -- uniform at 0.95 offered load, where only throughput
  agreement is meaningful.

Latency distributions are compared with two-sample KS.  Within one
seed the sample is an autocorrelated queueing realization, so raw KS
p-values reject even for two *exact* runs that differ only in seed;
the suite therefore calibrates against that null: the exact-vs-relaxed
pooled KS distance must not exceed the exact-vs-exact distance between
two disjoint seed pools (times a margin), plus an absolute effect-size
floor, and a thinned subsample (which breaks most of the
autocorrelation) must pass a conventional p-value bar.  Every seed,
tolerance and bootstrap draw is pinned, so the suite is fully
deterministic -- a failure means the engines drifted, not bad luck.
"""

from __future__ import annotations

import pytest
from statcheck import (
    bootstrap_ci,
    intervals_overlap,
    ks_2sample,
    replication_sweep,
)

from repro.simulation.config import SimulationParams

pytestmark = [pytest.mark.slow, pytest.mark.statistical]

#: Seed pools: the relaxed sweep reuses EXACT_SEEDS_A so the
#: comparison is paired; EXACT_SEEDS_B provides the same-engine null.
EXACT_SEEDS_A = range(0, 8)
EXACT_SEEDS_B = range(8, 16)

#: Pooled KS acceptance: distance(exact, relaxed) must stay within
#: NULL_MARGIN x distance(exact, exact') or below the absolute floor.
KS_NULL_MARGIN = 1.5
KS_ABS_FLOOR = 0.03

#: Thinned-KS bar: stride-subsampled pools (breaking autocorrelation)
#: must not reject at this level.
KS_THINNED_ALPHA = 0.01
KS_THINNED_N = 1_500

#: Accepted-load means must agree within this relative tolerance.
ACCEPTED_REL_TOL = 0.02

BASE = SimulationParams(measure_cycles=2_000, warmup_cycles=500)


def _pool(samples):
    return [x for per_seed in samples for x in per_seed]


def _thin(pool, target):
    if len(pool) <= target:
        return list(pool)
    stride = -(-len(pool) // target)
    return list(pool[::stride])


def _check_equivalence(topo, traffic, load, check_latency=True):
    exact_a = replication_sweep(topo, traffic, load, BASE, EXACT_SEEDS_A)
    exact_b = replication_sweep(topo, traffic, load, BASE, EXACT_SEEDS_B)
    relaxed = replication_sweep(
        topo, traffic, load, BASE.scaled(rng_mode="relaxed"), EXACT_SEEDS_A
    )

    # -- throughput: relative agreement and CI overlap ------------------
    rel_err = abs(
        relaxed.mean_accepted - exact_a.mean_accepted
    ) / exact_a.mean_accepted
    assert rel_err < ACCEPTED_REL_TOL, (
        f"accepted-load means diverged: exact {exact_a.mean_accepted:.4f} "
        f"vs relaxed {relaxed.mean_accepted:.4f} ({rel_err:.1%})"
    )
    acc_exact_ci = bootstrap_ci(exact_a.accepted_loads, seed=101)
    acc_relaxed_ci = bootstrap_ci(relaxed.accepted_loads, seed=102)
    assert intervals_overlap(acc_exact_ci, acc_relaxed_ci), (
        f"accepted-load CIs disjoint: exact {acc_exact_ci} vs "
        f"relaxed {acc_relaxed_ci}"
    )

    if not check_latency:
        return

    # -- latency means: CI overlap --------------------------------------
    lat_exact_ci = bootstrap_ci(exact_a.latency_means, seed=103)
    lat_relaxed_ci = bootstrap_ci(relaxed.latency_means, seed=104)
    assert intervals_overlap(lat_exact_ci, lat_relaxed_ci), (
        f"latency-mean CIs disjoint: exact {lat_exact_ci} vs "
        f"relaxed {lat_relaxed_ci}"
    )

    # -- latency distributions: null-calibrated KS ----------------------
    pool_a = _pool(exact_a.latency_samples)
    pool_b = _pool(exact_b.latency_samples)
    pool_r = _pool(relaxed.latency_samples)
    d_null, _ = ks_2sample(pool_a, pool_b)
    d_cross, _ = ks_2sample(pool_a, pool_r)
    bound = max(KS_ABS_FLOOR, KS_NULL_MARGIN * d_null)
    assert d_cross <= bound, (
        f"latency KS distance {d_cross:.4f} exceeds the calibrated "
        f"bound {bound:.4f} (same-engine null {d_null:.4f})"
    )
    _, p_thin = ks_2sample(
        _thin(pool_a, KS_THINNED_N), _thin(pool_r, KS_THINNED_N)
    )
    assert p_thin >= KS_THINNED_ALPHA, (
        f"thinned KS rejected: p={p_thin:.4f} < {KS_THINNED_ALPHA}"
    )


def test_uniform_fig8_equivalence(rfc_small):
    """Paper fig-8 working point: uniform traffic at 0.7 load."""
    _check_equivalence(rfc_small, "uniform", 0.7)


def test_adversarial_pairing_equivalence(rfc_small):
    """Adversarial permutation workload: random-pairing at 0.6 load."""
    _check_equivalence(rfc_small, "random-pairing", 0.6)


def test_saturation_throughput_equivalence(rfc_small):
    """Past saturation (0.95 offered) the engines must agree on the
    saturated throughput; latency means explode with the queue
    horizon, so only the distribution (not its bootstrap mean CI) is
    compared."""
    exact = replication_sweep(
        rfc_small, "uniform", 0.95, BASE, EXACT_SEEDS_A
    )
    relaxed = replication_sweep(
        rfc_small,
        "uniform",
        0.95,
        BASE.scaled(rng_mode="relaxed"),
        EXACT_SEEDS_A,
    )
    rel_err = abs(
        relaxed.mean_accepted - exact.mean_accepted
    ) / exact.mean_accepted
    assert rel_err < ACCEPTED_REL_TOL
    acc_exact_ci = bootstrap_ci(exact.accepted_loads, seed=105)
    acc_relaxed_ci = bootstrap_ci(relaxed.accepted_loads, seed=106)
    assert intervals_overlap(acc_exact_ci, acc_relaxed_ci)


def test_relaxed_repeat_determinism(rfc_small):
    """Same seed, same relaxed run -- repeats are bit-for-bit equal
    even though the mode is not comparable to exact runs."""
    params = BASE.scaled(rng_mode="relaxed")
    first = replication_sweep(rfc_small, "uniform", 0.7, params, [3])
    second = replication_sweep(rfc_small, "uniform", 0.7, params, [3])
    assert first == second
