"""Projective plane axiom tests."""

import pytest

from repro.topologies.projective import ProjectivePlane, projective_plane

ORDERS = [2, 3, 4, 5]


class TestPlaneAxioms:
    @pytest.mark.parametrize("q", ORDERS)
    def test_counts(self, q):
        plane = projective_plane(q)
        m = q * q + q + 1
        assert plane.num_points == m
        assert plane.num_lines == m

    @pytest.mark.parametrize("q", ORDERS)
    def test_line_sizes(self, q):
        plane = projective_plane(q)
        for line in range(plane.num_lines):
            assert len(plane.points_on_line(line)) == q + 1

    @pytest.mark.parametrize("q", ORDERS)
    def test_point_degrees(self, q):
        plane = projective_plane(q)
        for point in range(plane.num_points):
            assert len(plane.lines_through_point(point)) == q + 1

    @pytest.mark.parametrize("q", [2, 3, 4])
    def test_two_points_one_line(self, q):
        plane = projective_plane(q)
        for a in range(plane.num_points):
            for b in range(a + 1, plane.num_points):
                line = plane.line_through(a, b)
                assert plane.is_incident(a, line)
                assert plane.is_incident(b, line)

    @pytest.mark.parametrize("q", [2, 3])
    def test_two_lines_one_point(self, q):
        plane = projective_plane(q)
        for la in range(plane.num_lines):
            pa = set(plane.points_on_line(la))
            for lb in range(la + 1, plane.num_lines):
                assert len(pa & set(plane.points_on_line(lb))) == 1

    def test_line_through_same_point_rejected(self):
        plane = projective_plane(2)
        with pytest.raises(ValueError):
            plane.line_through(1, 1)

    def test_rejects_non_prime_power_order(self):
        with pytest.raises(ValueError):
            ProjectivePlane(6)

    def test_incidence_adjacency_shapes(self):
        plane = projective_plane(3)
        lines_per_point, points_per_line = plane.incidence_adjacency()
        assert len(lines_per_point) == 13
        assert len(points_per_line) == 13
        assert all(len(r) == 4 for r in lines_per_point)
        assert all(len(r) == 4 for r in points_per_line)

    def test_fano_plane_is_pg2(self):
        # q=2: the Fano plane, 7 points and 7 lines of 3 points.
        plane = projective_plane(2)
        assert plane.size == 7
        assert all(len(plane.points_on_line(l)) == 3 for l in range(7))

    def test_prime_power_order_9(self):
        plane = projective_plane(9)  # needs GF(3^2)
        assert plane.size == 91
        assert len(plane.points_on_line(0)) == 10
