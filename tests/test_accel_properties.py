"""Property-based equivalence: accel kernels vs reference engines.

Hypothesis drives randomized ``(level_sizes, up_stages)`` structures
-- including ragged, sparse, pruned and entirely empty stages that no
generator in the package would emit -- and random switch graphs, and
demands exact agreement between the packed-bitset / batched-BFS
kernels and the pure-Python references.  Runs under the shared
``dev``/``ci`` profiles registered in ``conftest.py``.
"""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro import accel
from repro.core.ancestors import (
    descendant_leaf_sets,
    has_updown_routing,
    root_ancestor_sets,
    updown_coverage,
    updown_reachable_fraction,
)
from repro.graphs.connectivity import connected_components, is_connected
from repro.graphs.metrics import bfs_distances
from repro.routing.updown import UpDownRouter


@st.composite
def staged_networks(draw):
    """A random ``(level_sizes, up_stages)`` pair, arbitrarily ragged.

    Stages may be empty, switches may have no up-links, and upper
    switches may be unreachable -- the full space the sweeps must
    handle, not just well-formed folded Clos instances.
    """
    levels = draw(st.integers(min_value=1, max_value=4))
    level_sizes = [
        draw(st.integers(min_value=1, max_value=10)) for _ in range(levels)
    ]
    up_stages = []
    for stage in range(levels - 1):
        n_hi = level_sizes[stage + 1]
        rows = []
        for _ in range(level_sizes[stage]):
            ups = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_hi - 1),
                    max_size=min(n_hi, 4),
                    unique=True,
                )
            )
            rows.append(ups)
        up_stages.append(rows)
    return level_sizes, up_stages


@st.composite
def switch_graphs(draw):
    """A random undirected adjacency list (possibly disconnected)."""
    n = draw(st.integers(min_value=1, max_value=32))
    adjacency = [set() for _ in range(n)]
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=3 * n,
        )
    )
    for a, b in edges:
        if a != b:
            adjacency[a].add(b)
            adjacency[b].add(a)
    return [sorted(nbrs) for nbrs in adjacency]


class TestSweepProperties:
    @given(staged_networks())
    def test_sweeps_match_reference(self, net):
        level_sizes, up_stages = net
        assert descendant_leaf_sets(level_sizes, up_stages, accel=True) == \
            descendant_leaf_sets(level_sizes, up_stages, accel=False)
        assert updown_coverage(level_sizes, up_stages, accel=True) == \
            updown_coverage(level_sizes, up_stages, accel=False)
        assert has_updown_routing(level_sizes, up_stages, accel=True) == \
            has_updown_routing(level_sizes, up_stages, accel=False)
        assert updown_reachable_fraction(
            level_sizes, up_stages, accel=True
        ) == updown_reachable_fraction(level_sizes, up_stages, accel=False)
        assert root_ancestor_sets(level_sizes, up_stages, accel=True) == \
            root_ancestor_sets(level_sizes, up_stages, accel=False)

    @given(staged_networks(), st.integers(min_value=0, max_value=2**32 - 1))
    def test_pruned_sweeps_match_reference(self, net, seed):
        # Deleting random edges from the Python stage lists must agree
        # with the same deletion expressed either way.
        level_sizes, up_stages = net
        rand = random.Random(seed)
        pruned = [
            [[t for t in row if rand.random() > 0.4] for row in rows]
            for rows in up_stages
        ]
        assert updown_coverage(level_sizes, pruned, accel=True) == \
            updown_coverage(level_sizes, pruned, accel=False)
        assert has_updown_routing(level_sizes, pruned, accel=True) == \
            has_updown_routing(level_sizes, pruned, accel=False)

    @given(staged_networks())
    def test_masked_sweep_equals_list_pruning(self, net):
        # A keep mask over the flat edge order must be exactly the
        # same operation as pruning the corresponding list entries:
        # drop every third edge in flat order, both ways.
        level_sizes, up_stages = net
        if not accel.is_available() or level_sizes[0] == 0:
            return
        import numpy as np

        sweeper = accel.StageSweeper(level_sizes, up_stages)
        keep_masks = []
        pruned = []
        flat = 0
        for rows in up_stages:
            kept_rows = []
            stage_keep = []
            for row in rows:
                kept = []
                for t in row:
                    keep = flat % 3 != 2
                    stage_keep.append(keep)
                    if keep:
                        kept.append(t)
                    flat += 1
                kept_rows.append(kept)
            pruned.append(kept_rows)
            keep_masks.append(np.asarray(stage_keep, dtype=bool))
        assert accel.masks_to_ints(sweeper.coverage_masks(keep_masks)) == \
            updown_coverage(level_sizes, pruned, accel=False)
        assert sweeper.has_updown(keep_masks) == \
            has_updown_routing(level_sizes, pruned, accel=False)

    @given(staged_networks())
    def test_router_tables_match(self, net):
        level_sizes, up_stages = net
        fast = UpDownRouter(level_sizes, up_stages, accel=True)
        slow = UpDownRouter(level_sizes, up_stages, accel=False)
        assert fast._reach == slow._reach


class TestBfsProperties:
    @given(switch_graphs())
    def test_batched_bfs_matches_deque(self, adjacency):
        for source in range(len(adjacency)):
            assert bfs_distances(adjacency, source, accel=True) == \
                bfs_distances(adjacency, source, accel=False)

    @given(switch_graphs())
    def test_batch_matrix_matches_singles(self, adjacency):
        # One batched call over all sources == n independent BFS runs,
        # including duplicate sources packed into one batch.
        if not accel.is_available():
            return
        csr = accel.CsrAdjacency.from_adjacency(adjacency)
        sources = list(range(len(adjacency))) + [0, 0]
        matrix = accel.bfs_distances_batch(csr, sources)
        for row, source in zip(matrix, sources):
            assert row.tolist() == bfs_distances(
                adjacency, source, accel=False
            )

    @given(switch_graphs())
    def test_components_match(self, adjacency):
        assert connected_components(adjacency, accel=True) == \
            connected_components(adjacency, accel=False)
        assert is_connected(adjacency, accel=True) == \
            is_connected(adjacency, accel=False)


class TestBitsetProperties:
    @given(
        st.lists(st.integers(min_value=0), max_size=8),
        st.integers(min_value=0, max_value=500),
    )
    def test_masks_round_trip(self, values, nbits):
        # ints -> packed words -> ints is lossless for any width that
        # can hold the values.
        if not accel.is_available():
            return
        needed = max((v.bit_length() for v in values), default=0)
        nbits = max(nbits, needed, 1)
        packed = accel.ints_to_masks(values, nbits)
        assert accel.masks_to_ints(packed) == values
