"""Shared fixtures: small canonical topologies reused across tests.

Hypothesis profiles: ``dev`` (the default) keeps property tests fast
for local iteration; ``ci`` raises the example counts for the coverage
gate (select with ``HYPOTHESIS_PROFILE=ci``).  Tests whose elevated
counts are expensive are additionally marked ``slow``.
"""

import os
import random
import sys

import pytest
from hypothesis import settings

# Make sibling helper modules (statcheck, ...) importable regardless
# of how pytest was invoked; tests/ is not a package.
sys.path.insert(0, os.path.dirname(__file__))

from repro.core.rfc import radix_regular_rfc, rfc_with_updown

settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, max_examples=60)
# The statistical-equivalence job runs with fixed seeds and a higher
# example budget: its assertions are calibrated, so more examples only
# add evidence, and derandomization keeps reruns identical.
settings.register_profile(
    "statistical", deadline=None, max_examples=100, derandomize=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
from repro.topologies.fattree import commodity_fat_tree, k_ary_l_tree
from repro.topologies.oft import orthogonal_fat_tree
from repro.topologies.rrn import random_regular_network


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture(scope="session")
def cft_4_3():
    """4-port 3-level commodity fat-tree: 16 terminals, 40 switches."""
    return commodity_fat_tree(4, 3)


@pytest.fixture(scope="session")
def cft_8_3():
    """8-port 3-level CFT: 128 terminals."""
    return commodity_fat_tree(8, 3)


@pytest.fixture(scope="session")
def kary_2_3():
    return k_ary_l_tree(2, 3)


@pytest.fixture(scope="session")
def oft_q2_l2():
    """2-level OFT of order 2: 42 terminals, radix 6."""
    return orthogonal_fat_tree(2, 2)


@pytest.fixture(scope="session")
def oft_q3_l3():
    """3-level OFT of order 3."""
    return orthogonal_fat_tree(3, 3)


@pytest.fixture(scope="session")
def rfc_small():
    """Up/down routable RFC: radix 8, 16 leaves, 3 levels."""
    topo, _ = rfc_with_updown(8, 16, 3, rng=7)
    return topo


@pytest.fixture(scope="session")
def rfc_medium():
    """Up/down routable RFC: radix 8, 32 leaves, 3 levels, 128 nodes."""
    topo, _ = rfc_with_updown(8, 32, 3, rng=11)
    return topo


@pytest.fixture
def rfc_unchecked(rng):
    """An RFC sample that may or may not be up/down routable."""
    return radix_regular_rfc(6, 20, 3, rng=rng)


@pytest.fixture(scope="session")
def rrn_16():
    """Random regular network: 16 switches, degree 4, 2 hosts each."""
    return random_regular_network(16, 4, 2, rng=3)
