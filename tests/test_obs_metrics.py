"""Unit tests for repro.obs metric primitives, registry and merging."""

import json

import pytest

import repro.obs as obs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    merge_metrics,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().export() == 0

    def test_inc_default_and_amount(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestGauge:
    def test_tracks_last_and_max(self):
        g = Gauge()
        g.set(3.0)
        g.set(7.0)
        g.set(2.0)
        assert g.export() == {"last": 2.0, "max": 7.0}


class TestHistogram:
    def test_exact_buckets(self):
        h = Histogram()
        for v in (1, 2, 2, 5):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10
        assert h.mean == pytest.approx(2.5)
        assert h.export()["buckets"] == {"1": 1, "2": 2, "5": 1}

    def test_weighted_observation(self):
        h = Histogram()
        h.observe(3, weight=4)
        assert h.count == 4
        assert h.total == 12

    def test_percentile(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(v)
        assert h.percentile(0.0) == 1.0
        assert h.percentile(0.5) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(1.0) == 100.0

    def test_percentile_empty_is_nan(self):
        import math

        assert math.isnan(Histogram().percentile(0.5))

    def test_percentile_bad_fraction(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_mean_empty_is_nan(self):
        import math

        assert math.isnan(Histogram().mean)

    def test_export_buckets_sorted(self):
        h = Histogram()
        for v in (30, 2, 11, 2):
            h.observe(v)
        keys = list(h.export()["buckets"])
        assert keys == sorted(keys, key=int)


class TestTimeSeries:
    def test_bucketing(self):
        ts = TimeSeries(width=10)
        ts.add(3)
        ts.add(9)
        ts.add(10, 2.5)
        assert ts.export() == {
            "width": 10,
            "buckets": {"0": 2.0, "1": 2.5},
        }

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries(width=0)


class TestRegistry:
    def test_accessors_create_once(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.timeseries("t", 5) is reg.timeseries("t", 99)

    def test_export_all_sections_sorted(self):
        reg = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg.counter(name).inc()
            reg.histogram(name).observe(1)
        export = reg.export()
        assert list(export) == ["counters", "gauges", "histograms", "timeseries"]
        assert list(export["counters"]) == ["alpha", "mid", "zeta"]
        assert list(export["histograms"]) == ["alpha", "mid", "zeta"]

    def test_export_is_byte_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").inc(2)
            reg.counter("a").inc(1)
            reg.timeseries("ts", 10).add(25, 3.0)
            reg.histogram("h").observe(7)
            reg.gauge("g").set(4.0)
            return json.dumps(reg.export(), sort_keys=True)

        assert build() == build()


class TestMerge:
    def test_counters_add(self):
        a = {"counters": {"x": 2}}
        b = {"counters": {"x": 3, "y": 1}}
        merged = merge_metrics([a, b])
        assert merged["counters"] == {"x": 5, "y": 1}

    def test_gauges_keep_max_of_max(self):
        a = {"gauges": {"g": {"last": 1.0, "max": 9.0}}}
        b = {"gauges": {"g": {"last": 2.0, "max": 4.0}}}
        assert merge_metrics([a, b])["gauges"]["g"]["max"] == 9.0

    def test_histogram_buckets_add(self):
        a = {"histograms": {"h": {"count": 2, "sum": 3, "buckets": {"1": 1, "2": 1}}}}
        b = {"histograms": {"h": {"count": 1, "sum": 2, "buckets": {"2": 1}}}}
        merged = merge_metrics([a, b])["histograms"]["h"]
        assert merged == {"count": 3, "sum": 5, "buckets": {"1": 1, "2": 2}}

    def test_timeseries_buckets_add(self):
        a = {"timeseries": {"t": {"width": 10, "buckets": {"0": 1.0}}}}
        b = {"timeseries": {"t": {"width": 10, "buckets": {"0": 2.0, "3": 1.0}}}}
        merged = merge_metrics([a, b])["timeseries"]["t"]
        assert merged == {"width": 10, "buckets": {"0": 3.0, "3": 1.0}}

    def test_timeseries_width_mismatch_raises(self):
        a = {"timeseries": {"t": {"width": 10, "buckets": {}}}}
        b = {"timeseries": {"t": {"width": 20, "buckets": {}}}}
        with pytest.raises(ValueError, match="width"):
            merge_metrics([a, b])

    def test_merge_order_invariant_bytes(self):
        a = {"counters": {"x": 1, "y": 2}, "histograms": {"h": {"count": 1, "sum": 9, "buckets": {"9": 1}}}}
        b = {"counters": {"y": 5, "z": 1}, "histograms": {"h": {"count": 2, "sum": 4, "buckets": {"2": 2}}}}
        ab = json.dumps(merge_metrics([a, b]), sort_keys=True)
        ba = json.dumps(merge_metrics([b, a]), sort_keys=True)
        assert ab == ba

    def test_empty_inputs_skipped(self):
        assert merge_metrics([{}, None and {} or {}, {"counters": {"c": 1}}])[
            "counters"
        ] == {"c": 1}


class TestAmbientSwitch:
    def test_default_off(self):
        obs.configure(metrics=False)
        assert not obs.metrics_enabled()

    def test_configure_on_then_off(self):
        obs.configure(metrics=True)
        assert obs.metrics_enabled()
        obs.configure(metrics=False)
        assert not obs.metrics_enabled()

    def test_using_metrics_restores(self):
        obs.configure(metrics=False)
        with obs.using_metrics():
            assert obs.metrics_enabled()
            obs.record("inner", {"counters": {"c": 1}})
        assert not obs.metrics_enabled()
        # Inner collections do not leak out of the context.
        assert obs.collected() == {}

    def test_record_merges_repeated_labels(self):
        obs.configure(metrics=True)
        obs.record("sweep", {"counters": {"c": 1}})
        obs.record("sweep", {"counters": {"c": 2}})
        assert obs.collected()["sweep"]["counters"]["c"] == 3
        obs.configure(metrics=False)

    def test_collected_labels_sorted(self):
        obs.configure(metrics=True)
        obs.record("zz", {"counters": {}})
        obs.record("aa", {"counters": {}})
        assert list(obs.collected()) == ["aa", "zz"]
        obs.reset()
        assert obs.collected() == {}
        obs.configure(metrics=False)
