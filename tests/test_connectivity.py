"""Connectivity-under-removal tests."""

from repro.graphs.connectivity import (
    adjacency_without_links,
    connected_components,
    connects_all,
    is_connected,
)


def two_triangles():
    """Vertices 0-2 and 3-5, disconnected triangles."""
    return [[1, 2], [0, 2], [0, 1], [4, 5], [3, 5], [3, 4]]


class TestComponents:
    def test_two_components(self):
        comps = connected_components(two_triangles())
        assert comps == [[0, 1, 2], [3, 4, 5]]

    def test_single_component(self, cft_4_3):
        assert connected_components(cft_4_3.adjacency())[0] == list(
            range(cft_4_3.num_switches)
        )

    def test_isolated_vertices(self):
        assert connected_components([[], [], []]) == [[0], [1], [2]]


class TestIsConnected:
    def test_connected(self, cft_4_3, rrn_16):
        assert is_connected(cft_4_3.adjacency())
        assert is_connected(rrn_16.adjacency())

    def test_disconnected(self):
        assert not is_connected(two_triangles())

    def test_empty(self):
        assert is_connected([])


class TestConnectsAll:
    def test_subset_within_component(self):
        assert connects_all(two_triangles(), [0, 1, 2])
        assert connects_all(two_triangles(), [3, 5])
        assert not connects_all(two_triangles(), [0, 3])

    def test_trivial_subsets(self):
        assert connects_all(two_triangles(), [])
        assert connects_all(two_triangles(), [4])

    def test_leaves_care_only_about_leaves(self, cft_4_3):
        # Strip every link of one root switch: the graph is
        # disconnected (root stranded) but leaves stay connected.
        adj = cft_4_3.adjacency()
        root = cft_4_3.switch_id(2, 0)
        removed = [(root, v) for v in adj[root]]
        pruned = adjacency_without_links(adj, removed)
        assert not is_connected(pruned)
        leaves = [cft_4_3.switch_id(0, i) for i in range(cft_4_3.num_leaves)]
        assert connects_all(pruned, leaves)


class TestAdjacencyWithout:
    def test_removes_both_directions(self):
        adj = [[1, 2], [0], [0]]
        pruned = adjacency_without_links(adj, [(0, 1)])
        assert pruned == [[2], [], [0]]

    def test_original_untouched(self):
        adj = [[1], [0]]
        adjacency_without_links(adj, [(0, 1)])
        assert adj == [[1], [0]]
