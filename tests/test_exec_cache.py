"""On-disk result cache: hits, misses, invalidation, corruption."""

import dataclasses
import json

import pytest

import repro.exec.executor as executor_mod
from repro.exec import build_executor
from repro.exec.cache import (
    CACHE_FORMAT,
    ResultCache,
    cache_key,
    topology_digest,
)
from repro.exec.executor import Executor, SimTask
from repro.simulation import SimulationParams, replicated_point
from repro.simulation.stats import SimResult

PARAMS = SimulationParams(measure_cycles=200, warmup_cycles=50, seed=1)


def _result(**overrides) -> SimResult:
    base = dict(
        offered_load=0.5, accepted_load=0.42, avg_latency=31.5,
        avg_hops=4.0, generated_packets=100, delivered_packets=90,
        measured_packets=80, max_latency=77, p50_latency=30.0,
        p99_latency=60.0, traffic="uniform", topology="net",
        unroutable_packets=0,
    )
    base.update(overrides)
    return SimResult(**base)


def _task(topo, **overrides) -> SimTask:
    base = dict(
        topo=topo, traffic_name="uniform", load=0.5, params=PARAMS,
        traffic_seed=3,
    )
    base.update(overrides)
    return SimTask(**base)


class TestResultCacheStore:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        stored = _result()
        cache.put("ab" * 32, stored)
        assert cache.get("ab" * 32) == stored
        assert len(cache) == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" * 32) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_nan_latency_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        stored = _result(avg_latency=float("nan"))
        cache.put("ee" * 32, stored)
        loaded = cache.get("ee" * 32)
        assert loaded is not None
        assert loaded.avg_latency != loaded.avg_latency  # NaN preserved

    def test_corrupted_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, _result())
        path = cache._path(key)
        path.write_text("{ not json")
        assert cache.get(key) is None

    def test_truncated_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, _result())
        path = cache._path(key)
        path.write_text(path.read_text()[:20])
        assert cache.get(key) is None

    def test_wrong_code_version_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, _result())
        path = cache._path(key)
        payload = json.loads(path.read_text())
        payload["code"] = "sim-0-ancient"
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None

    def test_wrong_format_version_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, _result())
        path = cache._path(key)
        payload = json.loads(path.read_text())
        payload["format"] = CACHE_FORMAT + 1
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None

    def test_unknown_result_field_is_miss(self, tmp_path):
        """A future field added to SimResult must not crash old code."""
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, _result())
        path = cache._path(key)
        payload = json.loads(path.read_text())
        payload["result"]["from_the_future"] = 1
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None


class TestCacheKey:
    def test_key_changes_with_each_component(self, cft_4_3, cft_8_3):
        digest = topology_digest(cft_4_3)
        base = cache_key(digest, "uniform", 0.5, PARAMS, 3)
        assert base == cache_key(digest, "uniform", 0.5, PARAMS, 3)
        variants = [
            cache_key(topology_digest(cft_8_3), "uniform", 0.5, PARAMS, 3),
            cache_key(digest, "fixed-random", 0.5, PARAMS, 3),
            cache_key(digest, "uniform", 0.6, PARAMS, 3),
            cache_key(digest, "uniform", 0.5, PARAMS.scaled(seed=2), 3),
            cache_key(
                digest, "uniform", 0.5, PARAMS.scaled(measure_cycles=300), 3
            ),
            cache_key(digest, "uniform", 0.5, PARAMS, 4),
            cache_key(
                digest, "uniform", 0.5, PARAMS, 3,
                removed_links=(cft_4_3.links()[0],),
            ),
        ]
        assert base not in variants
        assert len(set(variants)) == len(variants)

    def test_removed_links_order_irrelevant(self, cft_4_3):
        digest = topology_digest(cft_4_3)
        a, b = cft_4_3.links()[:2]
        assert cache_key(
            digest, "uniform", 0.5, PARAMS, 3, removed_links=(a, b)
        ) == cache_key(
            digest, "uniform", 0.5, PARAMS, 3, removed_links=(b, a)
        )

    def test_digest_distinguishes_wirings(self, rfc_small, rfc_medium):
        assert topology_digest(rfc_small) != topology_digest(rfc_medium)


class TestExecutorCaching:
    def test_warm_run_hits_every_point(self, cft_4_3, tmp_path):
        ex = build_executor(workers=1, cache_dir=tmp_path)
        tasks = [_task(cft_4_3, load=load) for load in (0.3, 0.6)]
        cold, cold_report = ex.run_sim_tasks(tasks)
        warm, warm_report = ex.run_sim_tasks(tasks)
        assert cold == warm
        assert cold_report.cache_hits == 0 and cold_report.computed == 2
        assert warm_report.cache_hits == 2 and warm_report.computed == 0

    def test_warm_run_never_calls_simulate(self, cft_4_3, tmp_path,
                                           monkeypatch):
        """The acceptance contract: a warm sweep is simulator-free."""
        ex = build_executor(workers=1, cache_dir=tmp_path)
        tasks = [_task(cft_4_3, load=load) for load in (0.3, 0.6, 0.9)]
        cold, _ = ex.run_sim_tasks(tasks)

        def banned(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("simulate called despite warm cache")

        monkeypatch.setattr(executor_mod, "simulate", banned)
        warm, report = ex.run_sim_tasks(tasks)
        assert warm == cold
        assert report.computed == 0

    def test_warm_replicated_point_never_simulates(self, cft_4_3, tmp_path,
                                                   monkeypatch):
        ex = build_executor(workers=1, cache_dir=tmp_path)
        cold = replicated_point(
            cft_4_3, "uniform", 0.4, PARAMS, replications=3, executor=ex
        )
        monkeypatch.setattr(
            executor_mod, "simulate",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("simulated")),
        )
        warm = replicated_point(
            cft_4_3, "uniform", 0.4, PARAMS, replications=3, executor=ex
        )
        assert cold == warm

    def test_changed_seed_misses(self, cft_4_3, tmp_path):
        ex = build_executor(cache_dir=tmp_path)
        ex.run_sim_tasks([_task(cft_4_3)])
        _, report = ex.run_sim_tasks(
            [_task(cft_4_3, params=PARAMS.scaled(seed=99))]
        )
        assert report.cache_hits == 0 and report.computed == 1

    def test_changed_traffic_seed_misses(self, cft_4_3, tmp_path):
        ex = build_executor(cache_dir=tmp_path)
        ex.run_sim_tasks([_task(cft_4_3)])
        _, report = ex.run_sim_tasks([_task(cft_4_3, traffic_seed=4)])
        assert report.cache_hits == 0 and report.computed == 1

    def test_corrupted_cache_recomputes(self, cft_4_3, tmp_path):
        ex = build_executor(cache_dir=tmp_path)
        task = _task(cft_4_3)
        cold, _ = ex.run_sim_tasks([task])
        for entry in tmp_path.glob("*/*.json"):
            entry.write_text("garbage{{{")
        recomputed, report = ex.run_sim_tasks([task])
        assert report.computed == 1
        assert recomputed == cold
        # ...and the bad entry was repaired in passing.
        _, repaired = ex.run_sim_tasks([task])
        assert repaired.cache_hits == 1

    def test_cacheless_executor_reports_no_hits(self, cft_4_3):
        _, report = Executor(workers=1).run_sim_tasks([_task(cft_4_3)])
        assert report.cache_hits == 0 and report.computed == 1

    def test_cached_results_equal_fresh(self, cft_4_3, tmp_path):
        fresh, _ = Executor().run_sim_tasks([_task(cft_4_3)])
        ex = build_executor(cache_dir=tmp_path)
        ex.run_sim_tasks([_task(cft_4_3)])
        cached, report = ex.run_sim_tasks([_task(cft_4_3)])
        assert report.cache_hits == 1
        # Side channels (metrics, latency_hist, flow_stats) are
        # stripped on the way into the cache; everything that defines
        # the measurement must round-trip bit-for-bit.
        assert cached[0] == fresh[0]
        assert cached[0].core_dict() == fresh[0].core_dict()
