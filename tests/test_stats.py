"""Statistics collection tests."""

import math

from repro.simulation.packet import Packet
from repro.simulation.stats import SimResult, SimStats


class TestSimStats:
    def test_measurement_window(self):
        stats = SimStats(warmup=100, horizon=200)
        early = Packet(0, 1, created=10)
        stats.on_delivered(early, 50, packet_phits=16)  # before warmup
        in_window = Packet(0, 1, created=120)
        in_window.hops = 3
        stats.on_delivered(in_window, 150, packet_phits=16)
        late = Packet(0, 1, created=190)
        stats.on_delivered(late, 250, packet_phits=16)  # after horizon
        assert stats.delivered_packets == 3
        assert stats.measured_packets == 1
        assert stats.measured_phits == 16
        assert stats.measured_latency_sum == 30
        assert stats.measured_hops_sum == 3
        assert stats.max_latency == 30


class TestSimResult:
    def test_from_stats(self):
        stats = SimStats(warmup=0, horizon=100)
        stats.generated_packets = 10
        for created in range(0, 50, 10):
            packet = Packet(0, 1, created)
            packet.hops = 2
            stats.on_delivered(packet, created + 20, packet_phits=16)
        result = SimResult.from_stats(
            stats, offered_load=0.5, num_terminals=8,
            traffic="uniform", topology="test",
        )
        assert result.measured_packets == 5
        assert result.accepted_load == 5 * 16 / (8 * 100)
        assert result.avg_latency == 20
        assert result.avg_hops == 2

    def test_empty_run_gives_nan(self):
        stats = SimStats(warmup=0, horizon=10)
        result = SimResult.from_stats(stats, 0.1, 4, "uniform", "t")
        assert math.isnan(result.avg_latency)
        assert result.accepted_load == 0.0

    def test_row_renders(self):
        stats = SimStats(warmup=0, horizon=10)
        result = SimResult.from_stats(stats, 0.1, 4, "uniform", "t")
        assert "uniform" in result.row()


class TestZeroDenominatorGuards:
    """Degenerate windows must report zeros, not ZeroDivisionError."""

    def test_from_stats_zero_cycle_window(self):
        stats = SimStats(warmup=100, horizon=100)
        result = SimResult.from_stats(stats, 0.5, 8, "uniform", "t")
        assert result.accepted_load == 0.0
        assert math.isnan(result.avg_latency)

    def test_from_stats_zero_terminals(self):
        stats = SimStats(warmup=0, horizon=10)
        result = SimResult.from_stats(stats, 0.5, 0, "uniform", "t")
        assert result.accepted_load == 0.0

    def test_batch_accepted_loads_zero_window(self):
        stats = SimStats(warmup=50, horizon=50)
        packet = Packet(0, 1, created=40)
        stats.on_delivered(packet, 50, packet_phits=16)
        assert stats.batch_phits  # a batch was recorded...
        # ...and reading it back with a zero-cycle window is zeros.
        assert stats.batch_accepted_loads(8) == [0.0] * stats.num_batches

    def test_batch_accepted_loads_zero_terminals(self):
        stats = SimStats(warmup=0, horizon=100)
        stats.on_delivered(Packet(0, 1, created=10), 20, packet_phits=16)
        assert stats.batch_accepted_loads(0) == [0.0] * stats.num_batches

    def test_batch_accepted_loads_no_traffic(self):
        stats = SimStats(warmup=0, horizon=100)
        assert stats.batch_accepted_loads(8) == []
