"""Differential harness: numpy kernels vs pure-Python reference.

The contract of :mod:`repro.accel` is *bit-for-bit* equality with the
reference implementations it replaces -- same distances, same packed
masks after conversion, same router tables, same fault thresholds,
same exceptions.  This suite enforces the contract on a randomized
matrix of RFC, CFT and RRN instances: any divergence is a kernel bug
by definition, never a tolerance question.

The relaxed engine (``rng_mode="relaxed"``) is the one deliberate
exception -- it is *not* held to bit-for-bit equality (see
``test_relaxed_rng_equivalence.py``), but it must not *perturb* the
engines that are: ``TestRelaxedNoPerturbation`` runs a relaxed
simulation first and then re-checks the exact engines against the
golden pins in the same process.
"""

import json
import random
from pathlib import Path

import pytest

from repro.core.ancestors import (
    descendant_leaf_sets,
    has_updown_routing,
    root_ancestor_sets,
    stages_of,
    updown_coverage,
    updown_reachable_fraction,
)
from repro.core.rfc import radix_regular_rfc
from repro.faults.removal import shuffled_links
from repro.faults.updown_survival import order_threshold
from repro.graphs.connectivity import (
    adjacency_without_links,
    connected_components,
    connects_all,
    is_connected,
)
from repro.graphs.metrics import (
    average_distance,
    bfs_distances,
    diameter,
    distance_histogram,
    leaf_diameter,
)
from repro.routing.updown import UpDownRouter
from repro.topologies.fattree import commodity_fat_tree
from repro.topologies.rrn import random_regular_network


def _instances():
    """The randomized topology matrix, as (label, network) pairs."""
    pairs = [
        ("cft_4_3", commodity_fat_tree(4, 3)),
        ("cft_6_2", commodity_fat_tree(6, 2)),
        ("rrn_24", random_regular_network(24, 4, 2, rng=5)),
        ("rrn_40", random_regular_network(40, 5, 2, rng=9)),
    ]
    for seed in (1, 2, 3):
        pairs.append(
            (f"rfc_s{seed}", radix_regular_rfc(8, 24, 3, rng=seed))
        )
    pairs.append(("rfc_l2", radix_regular_rfc(10, 30, 2, rng=4)))
    return pairs


INSTANCES = _instances()
IDS = [label for label, _ in INSTANCES]
NETWORKS = [net for _, net in INSTANCES]


@pytest.fixture(params=NETWORKS, ids=IDS)
def network(request):
    return request.param


@pytest.fixture(params=NETWORKS, ids=IDS)
def adjacency(request):
    return request.param.adjacency()


class TestDistanceEquality:
    def test_bfs_distances(self, adjacency):
        for source in range(0, len(adjacency), 7):
            assert bfs_distances(adjacency, source, accel=True) == \
                bfs_distances(adjacency, source, accel=False)

    def test_diameter_full(self, adjacency):
        assert diameter(adjacency, accel=True) == \
            diameter(adjacency, accel=False)

    def test_diameter_sampled_same_sources(self, adjacency):
        # Identical rng seeds draw identical source samples, so the
        # sampled lower bounds must agree exactly too.
        sample = max(2, len(adjacency) // 3)
        assert diameter(adjacency, sample=sample, rng=13, accel=True) == \
            diameter(adjacency, sample=sample, rng=13, accel=False)

    def test_average_distance(self, adjacency):
        assert average_distance(adjacency, accel=True) == \
            average_distance(adjacency, accel=False)

    def test_distance_histogram(self, adjacency):
        assert distance_histogram(adjacency, accel=True) == \
            distance_histogram(adjacency, accel=False)

    def test_leaf_diameter(self, network):
        adjacency = network.adjacency()
        leaves = [
            network.terminal_switch(t) for t in range(network.num_terminals)
        ]
        assert leaf_diameter(adjacency, leaves, accel=True) == \
            leaf_diameter(adjacency, leaves, accel=False)


class TestConnectivityEquality:
    def test_components_intact(self, adjacency):
        assert connected_components(adjacency, accel=True) == \
            connected_components(adjacency, accel=False)

    def test_components_after_removal(self, network):
        rand = random.Random(17)
        links = list(network.links())
        removed = [
            tuple(link) for link in rand.sample(links, len(links) // 2)
        ]
        pruned = adjacency_without_links(network.adjacency(), removed)
        assert connected_components(pruned, accel=True) == \
            connected_components(pruned, accel=False)
        assert is_connected(pruned, accel=True) == \
            is_connected(pruned, accel=False)
        leaves = [
            network.terminal_switch(t) for t in range(network.num_terminals)
        ]
        assert connects_all(pruned, leaves, accel=True) == \
            connects_all(pruned, leaves, accel=False)


def _folded_clos_instances():
    return [
        (label, net) for label, net in INSTANCES if hasattr(net, "up_neighbors")
    ]


FC_INSTANCES = _folded_clos_instances()


@pytest.fixture(
    params=[net for _, net in FC_INSTANCES],
    ids=[label for label, _ in FC_INSTANCES],
)
def folded(request):
    return request.param


class TestSweepEquality:
    def test_descendant_sets(self, folded):
        sizes, stages = folded.level_sizes, stages_of(folded)
        assert descendant_leaf_sets(sizes, stages, accel=True) == \
            descendant_leaf_sets(sizes, stages, accel=False)

    def test_coverage(self, folded):
        sizes, stages = folded.level_sizes, stages_of(folded)
        assert updown_coverage(sizes, stages, accel=True) == \
            updown_coverage(sizes, stages, accel=False)

    def test_has_updown_and_fraction(self, folded):
        sizes, stages = folded.level_sizes, stages_of(folded)
        assert has_updown_routing(sizes, stages, accel=True) == \
            has_updown_routing(sizes, stages, accel=False)
        assert updown_reachable_fraction(sizes, stages, accel=True) == \
            updown_reachable_fraction(sizes, stages, accel=False)

    def test_root_ancestors(self, folded):
        sizes, stages = folded.level_sizes, stages_of(folded)
        assert root_ancestor_sets(sizes, stages, accel=True) == \
            root_ancestor_sets(sizes, stages, accel=False)

    def test_pruned_stage_equality(self, folded):
        # Delete a deterministic third of each stage's edges from the
        # Python lists; the masked accel sweep must match the reference
        # sweep over the pruned lists exactly.
        sizes, stages = folded.level_sizes, stages_of(folded)
        rand = random.Random(23)
        pruned = []
        for rows in stages:
            pruned.append(
                [
                    [t for t in row if rand.random() > 1 / 3]
                    for row in rows
                ]
            )
        assert updown_coverage(sizes, pruned, accel=True) == \
            updown_coverage(sizes, pruned, accel=False)
        assert has_updown_routing(sizes, pruned, accel=True) == \
            has_updown_routing(sizes, pruned, accel=False)


class TestRouterTableEquality:
    def test_reach_tables(self, folded):
        fast = UpDownRouter.for_topology(folded, accel=True)
        slow = UpDownRouter.for_topology(folded, accel=False)
        assert fast._reach == slow._reach


class TestFaultThresholdEquality:
    def test_order_thresholds(self, folded):
        for seed in (0, 1, 2):
            order = shuffled_links(folded, rng=seed)
            assert order_threshold(folded, order, accel=True) == \
                order_threshold(folded, order, accel=False)


class TestRelaxedNoPerturbation:
    """Exact engines stay bit-for-bit pinned after a relaxed run.

    The relaxed engine shares the ``repro.accel`` package (numpy
    mirrors, module-level salts, cached tables) with the exact
    vectorized engine.  Running it must leave no trace: a relaxed
    simulation executed *first* in the same process may not change a
    single bit of any exact engine's subsequent output vs the pre-PR
    golden snapshot ``tests/data/golden_load_sweep.json``.
    """

    GOLDEN = Path(__file__).parent / "data" / "golden_load_sweep.json"

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(self.GOLDEN.read_text())

    @pytest.fixture(scope="class")
    def golden_topo(self):
        from repro.core.rfc import rfc_with_updown

        topo, _ = rfc_with_updown(8, 16, 3, rng=7)
        return topo

    @pytest.fixture(scope="class", autouse=True)
    def relaxed_run_first(self, golden_topo):
        """Exercise the relaxed code paths before any exact check."""
        from repro.simulation.config import SimulationParams
        from repro.simulation.engine import simulate
        from repro.simulation.traffic import make_traffic

        params = SimulationParams(
            measure_cycles=400,
            warmup_cycles=100,
            seed=3,
            rng_mode="relaxed",
        )
        traffic = make_traffic(
            "uniform", golden_topo.num_terminals, rng=params.seed + 7_919
        )
        result = simulate(golden_topo, traffic, 0.5, params)
        assert result.delivered_packets > 0
        return result

    @pytest.mark.parametrize(
        "engine", ["reference", "fast", "vectorized"]
    )
    def test_exact_engines_unperturbed(self, golden_topo, golden, engine):
        from repro.simulation.config import SimulationParams
        from repro.simulation.engine import load_sweep

        params = SimulationParams(
            measure_cycles=400, warmup_cycles=100, seed=3, engine=engine
        )
        results = load_sweep(golden_topo, "uniform", [0.2, 0.5, 0.8], params)
        assert [r.core_dict() for r in results] == golden

    def test_relaxed_differs_from_exact_pins(self, relaxed_run_first, golden):
        """Sanity guard on the guard: the relaxed result really does
        come from a different draw sequence, so a silent fall-through
        to an exact engine would be caught here."""
        exact_mid = golden[1]  # load 0.5 entry of the sweep
        assert relaxed_run_first.core_dict() != exact_mid


class TestFallbacks:
    def test_empty_graph(self):
        # n == 0 falls back to the reference path automatically.
        assert connected_components([], accel=True) == []
        assert is_connected([], accel=True) is True

    def test_empty_leaf_level(self):
        # n1 == 0 falls back to the reference sweep automatically.
        assert has_updown_routing([0, 0], [[]], accel=True) is True

    def test_identical_exceptions(self, folded):
        # Disconnect one switch completely; both engines must raise the
        # same message.
        adjacency = [list(r) for r in folded.adjacency()]
        victim = adjacency[0][0]
        for nbr in adjacency[victim]:
            adjacency[nbr] = [v for v in adjacency[nbr] if v != victim]
        adjacency[victim] = []
        for accel in (True, False):
            with pytest.raises(ValueError, match="graph is disconnected"):
                diameter(adjacency, accel=accel)
