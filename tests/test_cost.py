"""Cost model and Section 5 scenario tests."""

import pytest

from repro.cost.model import (
    CostPoint,
    cft_cost,
    expandability_curve,
    oft_cost,
    rfc_cost,
    rrn_cost,
)
from repro.cost.scenarios import SCENARIOS, scenario, scenario_names


class TestCostPoint:
    def test_ports_formula(self):
        point = CostPoint("X", 8, 2, terminals=10, switches=5, wires=20)
        assert point.ports == 50
        assert point.ports_per_terminal == 5.0

    def test_savings(self):
        a = CostPoint("A", 8, 2, 100, 50, 200)
        b = CostPoint("B", 8, 2, 100, 100, 400)
        savings = a.savings_vs(b)
        assert savings["switches"] == 0.5
        assert savings["wires"] == 0.5


class TestClosedForms:
    def test_cft_matches_instance(self, cft_8_3):
        point = cft_cost(8, 3)
        assert point.terminals == cft_8_3.num_terminals
        assert point.switches == cft_8_3.num_switches
        assert point.wires == cft_8_3.num_links

    def test_rfc_matches_instance(self, rfc_medium):
        point = rfc_cost(8, 32, 3)
        assert point.terminals == rfc_medium.num_terminals
        assert point.switches == rfc_medium.num_switches
        assert point.wires == rfc_medium.num_links

    def test_oft_matches_instance(self, oft_q3_l3):
        point = oft_cost(3, 3)
        assert point.terminals == oft_q3_l3.num_terminals
        assert point.switches == oft_q3_l3.num_switches
        assert point.wires == oft_q3_l3.num_links

    def test_rrn(self):
        point = rrn_cost(100, 8, 4)
        assert point.terminals == 400
        assert point.wires == 400
        assert point.radix == 12

    def test_rfc_rejects_odd_leaves(self):
        with pytest.raises(ValueError):
            rfc_cost(8, 15, 3)


class TestScenarioNumbers:
    def test_equal_resources(self):
        scn = scenario("equal-resources-11k")
        assert scn.cft.terminals == 11_664
        assert scn.rfc.terminals == 11_664
        assert scn.cft.switches == scn.rfc.switches == 1_620
        assert scn.rfc_alt is not None
        assert scn.rfc_alt.radix == 20
        assert scn.rfc_alt.terminals == 11_660
        # Paper: radix-20 RFC has similar wire cost to the radix-36 CFT.
        assert abs(scn.rfc_alt.wires - scn.cft.wires) <= 10

    def test_intermediate(self):
        scn = scenario("intermediate-100k")
        assert scn.rfc.terminals == 100_008
        assert scn.rfc.switches == 13_890
        assert scn.rfc.wires == 200_016
        assert scn.cft.switches == 40_824
        assert scn.cft.wires == 629_856

    def test_maximum_paper_savings(self):
        """Paper: 31% switch and 36% wire savings at 200K."""
        scn = scenario("maximum-200k")
        assert scn.rfc.terminals == 202_572
        assert scn.rfc.switches == 28_135
        assert scn.rfc.wires == 405_144
        savings = scn.savings()
        assert savings["switches"] == pytest.approx(0.31, abs=0.01)
        assert savings["wires"] == pytest.approx(0.36, abs=0.01)

    def test_scaled_configs_consistent(self):
        for scn in SCENARIOS.values():
            scaled = scn.scaled
            assert scaled.rfc_terminals > 0
            assert scaled.cft_terminals > 0
            assert scaled.rfc_n1 % 2 == 0

    def test_prefix_lookup(self):
        assert scenario("maximum").name == "maximum-200k"
        with pytest.raises(KeyError):
            scenario("nope")

    def test_names(self):
        assert len(scenario_names()) == 3


class TestExpandabilityCurve:
    def test_rfc_nearly_linear(self):
        # Within one level regime (3 levels spans 2K-200K at radix 36)
        # doubling terminals roughly doubles ports.
        counts = [4_000, 8_000, 16_000, 32_000]
        points = expandability_curve("rfc", 36, counts)
        assert all(p.levels == 3 for p in points)
        ratios = [
            points[i + 1].ports / points[i].ports for i in range(3)
        ]
        assert all(1.8 < r < 2.2 for r in ratios)

    def test_cft_steps(self):
        before, after = expandability_curve("cft", 36, [11_664, 11_665])
        assert after.ports > before.ports * 10  # a level jump

    def test_rfc_cheaper_than_cft_between_steps(self):
        """Paper: RFC connects 100K nodes at a fraction of CFT cost."""
        [cft] = expandability_curve("cft", 36, [100_008])
        [rfc] = expandability_curve("rfc", 36, [100_008])
        assert rfc.ports < 0.4 * cft.ports

    def test_rrn_linear(self):
        points = expandability_curve("rrn", 36, [1_000, 2_000])
        assert points[1].ports == pytest.approx(2 * points[0].ports, rel=0.05)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            expandability_curve("mesh", 36, [100])

    def test_monotone_nondecreasing(self):
        for kind in ("cft", "rfc", "oft", "rrn"):
            counts = [500, 5_000, 50_000]
            points = expandability_curve(kind, 36, counts)
            ports = [p.ports for p in points]
            assert ports == sorted(ports)
