"""Statistical-equivalence helpers for exact-vs-relaxed comparisons.

The relaxed engine (``rng_mode="relaxed"``) is deterministic for a
given seed but draws its randomness from a counter-based keyed hash
instead of the exact engines' shared sequential stream, so its results
can only be compared *distributionally*.  This module provides the
small, dependency-light toolkit ``test_relaxed_rng_equivalence.py``
builds its assertions from:

* :func:`replication_sweep` -- run one simulation per seed and collect
  accepted loads, latency means and the raw per-packet latency samples
  (read off the live :class:`~repro.simulation.stats.SimStats`, which
  the summary :class:`~repro.simulation.stats.SimResult` does not
  carry).
* :func:`bootstrap_ci` -- percentile bootstrap confidence interval on
  a mean, driven by a pinned ``random.Random`` seed so the suite is
  deterministic end to end.
* :func:`intervals_overlap` -- CI-overlap acceptance on paired sweeps.
* :func:`ks_2sample` -- two-sample Kolmogorov-Smirnov statistic and
  asymptotic p-value; delegates to :mod:`scipy.stats` when available
  and falls back to a self-contained implementation otherwise (same
  asymptotic formula, adequate for the sample sizes used here).

Everything here is pure measurement -- thresholds live in the tests,
pinned next to the seeds that produced them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.traffic import make_traffic

__all__ = [
    "SweepSample",
    "bootstrap_ci",
    "intervals_overlap",
    "ks_2sample",
    "replication_sweep",
]

#: Traffic-seed offset, mirroring the executor/load_sweep convention of
#: deriving the pattern seed from the engine seed.
TRAFFIC_SEED_OFFSET = 7_919


@dataclass(frozen=True)
class SweepSample:
    """Per-seed measurements of one (topology, traffic, load) point."""

    accepted_loads: tuple[float, ...]
    latency_means: tuple[float, ...]
    #: Raw measured per-packet latencies, one tuple per seed.
    latency_samples: tuple[tuple[int, ...], ...]

    @property
    def mean_accepted(self) -> float:
        return sum(self.accepted_loads) / len(self.accepted_loads)

    @property
    def mean_latency(self) -> float:
        return sum(self.latency_means) / len(self.latency_means)


def replication_sweep(
    topo,
    traffic_name: str,
    load: float,
    params: SimulationParams,
    seeds,
    max_samples_per_seed: int = 4_000,
) -> SweepSample:
    """Run one simulation per seed; collect the equivalence inputs.

    The traffic pattern is rebuilt per seed (stateful patterns must
    never be shared across runs), and latency samples are subsampled
    by a deterministic stride to ``max_samples_per_seed`` so the KS
    test's power stays calibrated to the tolerance the suite pins
    rather than growing unboundedly with the measurement window.
    """
    accepted: list[float] = []
    means: list[float] = []
    samples: list[tuple[int, ...]] = []
    for seed in seeds:
        traffic = make_traffic(
            traffic_name,
            topo.num_terminals,
            rng=seed + TRAFFIC_SEED_OFFSET,
        )
        sim = Simulator(topo, traffic, load, params.scaled(seed=seed))
        result = sim.run()
        accepted.append(result.accepted_load)
        means.append(result.avg_latency)
        lats = sim._stats.latencies
        if len(lats) > max_samples_per_seed:
            stride = -(-len(lats) // max_samples_per_seed)
            lats = lats[::stride]
        samples.append(tuple(lats))
    return SweepSample(
        accepted_loads=tuple(accepted),
        latency_means=tuple(means),
        latency_samples=tuple(samples),
    )


def bootstrap_ci(
    values,
    confidence: float = 0.95,
    n_boot: int = 4_000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for the mean of ``values``.

    Deterministic for a given ``seed``; resampling uses the stdlib RNG
    so the harness works without numpy/scipy.
    """
    data = list(values)
    if not data:
        raise ValueError("bootstrap_ci needs at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(data)
    rng = random.Random(seed)
    boot_means = sorted(
        sum(rng.choice(data) for _ in range(n)) / n for _ in range(n_boot)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_idx = int(alpha * (n_boot - 1))
    hi_idx = int((1.0 - alpha) * (n_boot - 1))
    return boot_means[lo_idx], boot_means[hi_idx]


def intervals_overlap(
    a: tuple[float, float], b: tuple[float, float]
) -> bool:
    """Whether two closed intervals intersect."""
    return a[0] <= b[1] and b[0] <= a[1]


def _ks_pvalue(d: float, n_eff: float) -> float:
    """Asymptotic two-sided KS p-value (Kolmogorov distribution).

    Uses the standard Smirnov series with the small-sample continuity
    tweak scipy applies in asymptotic mode.
    """
    t = (math.sqrt(n_eff) + 0.12 + 0.11 / math.sqrt(n_eff)) * d
    if t <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * t * t)
        total += term
        if abs(term) < 1e-10:
            break
    return max(0.0, min(1.0, total))


def ks_2sample(a, b) -> tuple[float, float]:
    """Two-sample KS statistic and (asymptotic) two-sided p-value.

    Prefers :func:`scipy.stats.ks_2samp`; the fallback computes the
    exact supremum distance over the pooled sample and the classical
    asymptotic p-value, which is what the pinned thresholds in the
    equivalence suite are calibrated against.
    """
    xs = sorted(a)
    ys = sorted(b)
    if not xs or not ys:
        raise ValueError("ks_2sample needs two non-empty samples")
    try:
        from scipy.stats import ks_2samp
    except ImportError:
        pass
    else:
        res = ks_2samp(xs, ys, method="asymp")
        return float(res.statistic), float(res.pvalue)
    n, m = len(xs), len(ys)
    i = j = 0
    d = 0.0
    while i < n and j < m:
        if xs[i] <= ys[j]:
            i += 1
        else:
            j += 1
        d = max(d, abs(i / n - j / m))
    n_eff = n * m / (n + m)
    return d, _ks_pvalue(d, n_eff)
