"""CLI export / CSV command tests."""

import json

from repro.cli import main
from repro.topologies.io import load


class TestExport:
    def test_json_roundtrips(self, tmp_path, capsys):
        out = tmp_path / "rfc.json"
        assert main([
            "export", "rfc", str(out),
            "--radix", "8", "--leaves", "16", "--seed", "1",
        ]) == 0
        topo = load(out)
        assert topo.num_leaves == 16
        assert topo.radix == 8

    def test_dot(self, tmp_path, capsys):
        out = tmp_path / "cft.dot"
        assert main([
            "export", "cft", str(out), "--radix", "4", "--levels", "2",
        ]) == 0
        assert out.read_text().startswith("graph")

    def test_edges(self, tmp_path, capsys):
        out = tmp_path / "net.edges"
        assert main([
            "export", "rrn", str(out), "--radix", "6", "--switches", "16",
        ]) == 0
        lines = out.read_text().splitlines()
        assert all(len(line.split()) == 2 for line in lines)

    def test_oft_export(self, tmp_path, capsys):
        out = tmp_path / "oft.json"
        assert main([
            "export", "oft", str(out), "--radix", "6", "--levels", "2",
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "folded-clos"

    def test_unknown_extension_fails(self, tmp_path, capsys):
        out = tmp_path / "net.xml"
        assert main([
            "export", "cft", str(out), "--radix", "4", "--levels", "2",
        ]) == 2


class TestDiversity:
    def test_cft(self, capsys):
        assert main([
            "diversity", "cft", "--radix", "4", "--levels", "3",
        ]) == 0
        assert "width mean" in capsys.readouterr().out

    def test_rfc(self, capsys):
        assert main([
            "diversity", "rfc", "--radix", "8", "--leaves", "16",
            "--pairs", "50", "--seed", "2",
        ]) == 0
        assert "single-route" in capsys.readouterr().out

    def test_oft(self, capsys):
        assert main([
            "diversity", "oft", "--radix", "6", "--levels", "2",
            "--pairs", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "OFT" in out


class TestSimulateRfc:
    def test_simulate_rfc_branch(self, capsys):
        assert main([
            "simulate", "rfc", "--radix", "8", "--leaves", "16",
            "--load", "0.3", "--cycles", "300", "--warmup", "100",
        ]) == 0
        assert "accepted" in capsys.readouterr().out


class TestExperimentCsv:
    def test_writes_csv(self, tmp_path, capsys):
        assert main([
            "experiment", "sec5", "--csv", str(tmp_path / "csv"),
        ]) == 0
        content = (tmp_path / "csv" / "sec5.csv").read_text()
        assert content.startswith("scenario,topology")
        assert "# " in content  # notes trailer
