"""Experiment harness tests: every table/figure runs and has the
paper's qualitative shape (quick parameter sets)."""

import math

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.common import Table, format_cell


class TestTable:
    def test_add_and_render(self):
        table = Table("T", ["a", "b"])
        table.add(1, 2.5)
        table.note("n")
        text = table.render()
        assert "T" in text and "note: n" in text

    def test_rejects_ragged_rows(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_column_access(self):
        table = Table("T", ["a", "b"])
        table.add(1, 2)
        table.add(3, 4)
        assert table.column("b") == [2, 4]

    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(None) == "-"
        assert format_cell(float("nan")) == "-"
        assert format_cell(12_345) == "12,345"
        assert format_cell(0.5) == "0.5"


class TestRegistry:
    def test_all_ids_present(self):
        expected = {
            "thm42", "fig5", "fig6", "fig7", "tab3", "fig8", "fig9",
            "fig10", "fig11", "fig12", "sec42", "sec5", "thm91", "fct",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestThm42:
    def test_observed_tracks_finite_size(self):
        table = run_experiment("thm42", quick=True, seed=1)
        predicted = table.column("finite-size P")
        observed = table.column("observed P")
        for p, o in zip(predicted, observed):
            assert abs(p - o) < 0.30  # 50-sample binomial noise band

    def test_transition_is_sharp(self):
        table = run_experiment("thm42", quick=True, seed=1)
        observed = table.column("observed P")
        assert min(observed) < 0.2
        assert max(observed) > 0.9


class TestFig5:
    def test_ordering(self):
        table = run_experiment("fig5", quick=True)
        for row in table.rows:
            terminals, d_rrn, d_rfc, d_cft, d_oft = row
            assert d_oft <= d_rfc <= d_cft
            assert d_rfc % 2 == 0

    def test_monotone_in_terminals(self):
        table = run_experiment("fig5", quick=True)
        for col in ("D(RFC)", "D(CFT)", "D(OFT)", "D(RRN)"):
            values = table.column(col)
            assert values == sorted(values)


class TestFig6:
    def test_scaling_order_at_large_radix(self):
        table = run_experiment("fig6", quick=True)
        radii = table.column("radix")
        row = table.rows[radii.index(36)]
        by = dict(zip(table.headers, row))
        assert by["CFT l=3"] < by["RFC l=3"] < by["OFT l=3"]


class TestFig7:
    def test_rfc_cheaper_between_cft_steps(self):
        table = run_experiment("fig7", quick=True, seed=0)
        terminals = table.column("terminals")
        idx = terminals.index(100_008)
        row = table.rows[idx]
        by = dict(zip(table.headers, row))
        assert by["ports RFC"] < by["ports CFT"]
        assert by["levels RFC"] == 3
        assert by["levels CFT"] == 4


class TestTab3:
    def test_paper_ordering(self):
        table = run_experiment("tab3", quick=True, seed=0)
        for row in table.rows:
            by = dict(zip(table.headers, row))
            # RFC needs the smallest fraction among CFT/RRN/RFC,
            # because it achieves the size with the smallest radix.
            assert by["RFC %"] < by["CFT %"]
            assert by["RFC %"] < by["RRN %"] + 3  # near-tie tolerance
            if by["OFT %"] is not None:
                assert by["OFT %"] < by["RFC %"]

    def test_reference_magnitudes(self):
        table = run_experiment("tab3", quick=True, seed=0)
        by = dict(zip(table.headers, table.rows[-1]))  # ~1024 row
        assert 40 < by["CFT %"] < 65
        assert 30 < by["RFC %"] < 50
        assert 15 < by["OFT %"] < 32


class TestFig11:
    def test_oft_zero_cft_below_rfc(self):
        table = run_experiment("fig11", quick=True, seed=0)
        rows = [dict(zip(table.headers, r)) for r in table.rows]
        oft = [r for r in rows if r["topology"] == "OFT"]
        assert all(r["tolerated %"] == 0 for r in oft)
        rfc3 = [
            r["tolerated %"]
            for r in rows
            if r["topology"] == "RFC" and r["levels"] == 3
        ]
        cft3 = [
            r["tolerated %"]
            for r in rows
            if r["topology"] == "CFT" and r["levels"] == 3
        ]
        # A mid-size RFC tolerates more than the same-radix CFT.
        assert max(rfc3) > cft3[0]

    def test_tolerance_decreases_toward_cap(self):
        table = run_experiment("fig11", quick=True, seed=0)
        rows = [dict(zip(table.headers, r)) for r in table.rows]
        rfc3 = [
            (r["terminals"], r["tolerated %"])
            for r in rows
            if r["topology"] == "RFC" and r["levels"] == 3
        ]
        rfc3.sort()
        assert rfc3[0][1] > rfc3[-1][1]


class TestSec5:
    def test_rows_and_savings_notes(self):
        table = run_experiment("sec5", quick=True)
        assert len(table.rows) == 7  # 3 scenarios + alt RFC
        assert any("31" in n for n in table.notes)


class TestThm91:
    def test_normalized_roughly_flat(self):
        table = run_experiment("thm91", quick=True, seed=0)
        normalized = table.column("regular s/(N D lnD) 1e-9")
        assert max(normalized) / max(1e-12, min(normalized)) < 12
