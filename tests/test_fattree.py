"""Tests for deterministic fat-tree constructions."""

import pytest

from repro.graphs.metrics import diameter, leaf_diameter
from repro.topologies.base import NetworkError
from repro.topologies.fattree import (
    cft_level_sizes,
    cft_levels_for_terminals,
    cft_radix_for,
    cft_switches,
    cft_terminals,
    cft_wires,
    commodity_fat_tree,
    k_ary_l_tree,
    partially_populated_cft,
    xgft,
)


class TestXGFT:
    def test_trivial_single_switch(self):
        topo = xgft([4], [1])
        assert topo.num_levels == 1
        assert topo.num_terminals == 4
        assert topo.num_links == 0

    def test_two_level_counts(self):
        topo = xgft([2, 3], [1, 2])
        # 3 leaves, each with 2 parents; 2 tops, each with 3 children.
        assert topo.level_sizes == [3, 2]
        assert topo.num_links == 6
        assert all(topo.up_degree(0, s) == 2 for s in range(3))
        assert all(len(topo.down_neighbors(1, s)) == 3 for s in range(2))

    def test_rejects_bad_args(self):
        with pytest.raises(NetworkError):
            xgft([2, 2], [1])
        with pytest.raises(NetworkError):
            xgft([], [])
        with pytest.raises(NetworkError):
            xgft([0, 2], [1, 2])

    def test_wiring_is_valid_folded_clos(self):
        topo = xgft([3, 2, 4], [1, 2, 3])
        topo.validate()


class TestCommodityFatTree:
    @pytest.mark.parametrize("radix,levels", [(4, 2), (4, 3), (6, 3), (8, 3)])
    def test_matches_closed_forms(self, radix, levels):
        topo = commodity_fat_tree(radix, levels)
        assert topo.num_terminals == cft_terminals(radix, levels)
        assert topo.level_sizes == cft_level_sizes(radix, levels)
        assert topo.num_switches == cft_switches(radix, levels)
        assert topo.num_links == cft_wires(radix, levels)

    def test_radix_regular(self, cft_4_3):
        assert cft_4_3.is_radix_regular()
        cft_4_3.validate()

    def test_terminal_count_formula(self):
        # Paper: 2 * (R/2)^l -- e.g. 11,664 for R=36, l=3.
        assert cft_terminals(36, 3) == 11_664
        assert cft_terminals(36, 4) == 209_952

    def test_paper_wire_counts(self):
        # Section 5: the 4-level 36-CFT uses 40,824 switches and
        # 629,856 wires.
        assert cft_switches(36, 4) == 40_824
        assert cft_wires(36, 4) == 629_856

    def test_diameter_is_2_l_minus_1(self, cft_4_3):
        leaves = [cft_4_3.switch_id(0, i) for i in range(cft_4_3.num_leaves)]
        assert leaf_diameter(cft_4_3.adjacency(), leaves) == 4

    def test_single_level(self):
        topo = commodity_fat_tree(8, 1)
        assert topo.num_terminals == 8
        assert topo.num_switches == 1

    def test_rejects_odd_radix(self):
        with pytest.raises(NetworkError):
            commodity_fat_tree(5, 2)

    def test_rejects_tiny_radix_multilevel(self):
        with pytest.raises(NetworkError):
            commodity_fat_tree(2, 3)


class TestKAryTree:
    def test_counts(self, kary_2_3):
        # k-ary l-tree: k^l terminals, l * k^(l-1) switches.
        assert kary_2_3.num_terminals == 8
        assert kary_2_3.num_switches == 12
        assert kary_2_3.level_sizes == [4, 4, 4]

    def test_cft_doubles_kary(self):
        # Paper Section 3: a CFT doubles the k-ary l-tree's terminals.
        kary = k_ary_l_tree(3, 3)
        cft = commodity_fat_tree(6, 3)
        assert cft.num_terminals == 2 * kary.num_terminals

    def test_rejects_k1(self):
        with pytest.raises(NetworkError):
            k_ary_l_tree(1, 3)

    def test_connected(self, kary_2_3):
        assert diameter(kary_2_3.adjacency()) >= 4


class TestPartialPopulation:
    def test_same_fabric_fewer_hosts(self):
        full = commodity_fat_tree(8, 3)
        partial = partially_populated_cft(8, 3, hosts=2)
        assert partial.level_sizes == full.level_sizes
        assert partial.num_links == full.num_links
        assert partial.num_terminals == full.num_leaves * 2
        assert not partial.is_radix_regular()

    def test_full_population_matches_cft(self):
        partial = partially_populated_cft(8, 3, hosts=4)
        assert partial.num_terminals == commodity_fat_tree(8, 3).num_terminals

    def test_rejects_overfull(self):
        with pytest.raises(NetworkError):
            partially_populated_cft(8, 3, hosts=5)


class TestSizingHelpers:
    def test_levels_for_terminals(self):
        assert cft_levels_for_terminals(36, 11_664) == 3
        assert cft_levels_for_terminals(36, 11_665) == 4

    def test_radix_for(self):
        assert cft_radix_for(11_664, 3) == 36
        assert cft_radix_for(11_665, 3) == 38

    def test_levels_monotone(self):
        previous = 1
        for terminals in (10, 100, 1_000, 10_000, 100_000):
            levels = cft_levels_for_terminals(8, terminals)
            assert levels >= previous
            previous = levels
