"""Unit + property tests for the Steger-Wormald generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topologies.random_graphs import (
    GenerationError,
    random_biregular_degrees,
    random_bipartite_graph,
    random_regular_graph,
)


class TestRandomRegular:
    def test_degrees_and_simplicity(self):
        adj = random_regular_graph(20, 5, rng=1)
        assert len(adj) == 20
        for u, nbrs in enumerate(adj):
            assert len(nbrs) == 5
            assert u not in nbrs
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                assert u in adj[v]

    def test_deterministic_with_seed(self):
        assert random_regular_graph(16, 4, rng=9) == random_regular_graph(
            16, 4, rng=9
        )

    def test_different_seeds_differ(self):
        a = random_regular_graph(30, 5, rng=1)
        b = random_regular_graph(30, 5, rng=2)
        assert a != b

    def test_degree_zero(self):
        assert random_regular_graph(5, 0, rng=0) == [set()] * 5

    def test_rejects_odd_sum(self):
        with pytest.raises(GenerationError):
            random_regular_graph(5, 3, rng=0)

    def test_rejects_degree_too_high(self):
        with pytest.raises(GenerationError):
            random_regular_graph(4, 4, rng=0)

    def test_rejects_empty(self):
        with pytest.raises(GenerationError):
            random_regular_graph(0, 2, rng=0)

    def test_complete_graph_edge_case(self):
        # degree = n - 1 forces the complete graph.
        adj = random_regular_graph(5, 4, rng=0)
        assert all(len(nbrs) == 4 for nbrs in adj)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=40),
        degree=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_regular_simple(self, n, degree, seed):
        if degree >= n or (n * degree) % 2:
            return
        adj = random_regular_graph(n, degree, rng=seed)
        assert all(len(nbrs) == degree for nbrs in adj)
        assert all(u not in adj[u] for u in range(n))
        assert all(u in adj[v] for u in range(n) for v in adj[u])


class TestRandomBipartite:
    def test_degrees(self):
        adj1, adj2 = random_bipartite_graph(12, 3, 9, 4, rng=5)
        assert all(len(row) == 3 for row in adj1)
        assert all(len(row) == 4 for row in adj2)

    def test_symmetry(self):
        adj1, adj2 = random_bipartite_graph(10, 4, 8, 5, rng=5)
        for u, row in enumerate(adj1):
            for v in row:
                assert u in adj2[v]
        for v, row in enumerate(adj2):
            for u in row:
                assert v in adj1[u]

    def test_deterministic(self):
        assert random_bipartite_graph(8, 2, 8, 2, rng=4) == (
            random_bipartite_graph(8, 2, 8, 2, rng=4)
        )

    def test_complete_bipartite_edge_case(self):
        adj1, adj2 = random_bipartite_graph(3, 4, 4, 3, rng=0)
        assert all(row == {0, 1, 2, 3} for row in adj1)

    def test_rejects_unbalanced(self):
        with pytest.raises(GenerationError):
            random_bipartite_graph(4, 3, 5, 3, rng=0)

    def test_rejects_overfull_degree(self):
        with pytest.raises(GenerationError):
            random_bipartite_graph(2, 6, 4, 3, rng=0)

    def test_zero_degree(self):
        adj1, adj2 = random_bipartite_graph(3, 0, 4, 0, rng=0)
        assert adj1 == [set(), set(), set()]
        assert adj2 == [set()] * 4

    def test_accepts_random_instance(self, rng):
        adj1, adj2 = random_bipartite_graph(16, 4, 16, 4, rng=rng)
        assert sum(len(r) for r in adj1) == 64
        assert sum(len(r) for r in adj2) == 64

    @settings(max_examples=25, deadline=None)
    @given(
        n1=st.integers(min_value=2, max_value=16),
        d1=st.integers(min_value=1, max_value=5),
        ratio=st.sampled_from([1, 2]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_biregular_simple(self, n1, d1, ratio, seed):
        n2, d2 = n1 * ratio, d1
        total = n1 * d1
        if total % n2:
            return
        d2 = total // n2
        if d1 > n2 or d2 > n1 or d2 == 0:
            return
        adj1, adj2 = random_bipartite_graph(n1, d1, n2, d2, rng=seed)
        assert all(len(r) == d1 for r in adj1)
        assert all(len(r) == d2 for r in adj2)
        # Simple: sets already deduplicate; check cross-consistency.
        assert sum(len(r) for r in adj1) == sum(len(r) for r in adj2)


class TestBiregularDegrees:
    def test_exact_split(self):
        assert random_biregular_degrees(4, 8, 16) == (4, 2)

    def test_rejects_uneven(self):
        with pytest.raises(GenerationError):
            random_biregular_degrees(4, 8, 18)
