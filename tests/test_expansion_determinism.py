"""Regression tests for the set-iteration determinism fixes in
``repro.core.expansion`` (found by ``repro.lint`` RPR003).

``_splice_bipartite`` and ``expand_rrn`` both enumerate candidate
edges out of ``set`` adjacency rows and then index that list with
``rand.randrange``: before the fix, the *iteration order* of those
sets -- which depends on insertion history and hash-table internals,
not on the graph -- decided which links were broken.  Two logically
identical inputs whose sets were merely built in a different order
could expand differently under the same seed.

The fixtures here use small colliding integers (0 and 8 share a slot
in a small CPython set table, so ``{0, 8}`` and ``set([8, 0])``
iterate differently) to make the hazard observable inside a single
interpreter.
"""

import random

import pytest

from repro.core.expansion import RewiringReport, _splice_bipartite, expand_rrn
from repro.topologies.rrn import random_regular_network


def colliding_stage(order):
    """One bipartite stage whose left rows iterate in ``order``'s
    insertion order: 3 left vertices all wired to right vertices
    {0, 8} of a 9-vertex right side."""
    adj1 = [set(order) for _ in range(3)]
    adj2 = [set() for _ in range(9)]
    for left, row in enumerate(adj1):
        for right in row:
            adj2[right].add(left)
    return adj1, adj2


def test_colliding_sets_iterate_differently():
    """Sanity check that the fixture exercises what it claims to."""
    assert list({0, 8}) != list(set([8, 0]))
    assert {0, 8} == set([8, 0])


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_splice_is_insertion_order_invariant(seed):
    results = []
    for order in ([0, 8], [8, 0]):
        adj1, adj2 = colliding_stage(order)
        _splice_bipartite(
            adj1, adj2, new_left=1, d1=2, new_right=1, d2=2,
            rand=random.Random(seed), report=RewiringReport(),
        )
        results.append((adj1, adj2))
    assert results[0] == results[1]


def test_splice_same_seed_reproducible():
    runs = []
    for _ in range(2):
        adj1, adj2 = colliding_stage([0, 8])
        _splice_bipartite(
            adj1, adj2, new_left=1, d1=2, new_right=1, d2=2,
            rand=random.Random(42), report=RewiringReport(),
        )
        runs.append((adj1, adj2))
    assert runs[0] == runs[1]


@pytest.mark.parametrize("seed", [3, 11])
def test_expand_rrn_same_seed_reproducible(seed):
    net = random_regular_network(16, 4, hosts_per_switch=2, rng=5)
    first, _ = expand_rrn(net, new_switches=3, rng=seed)
    second, _ = expand_rrn(net, new_switches=3, rng=seed)
    assert first.adjacency() == second.adjacency()


def test_expansion_edge_enumeration_is_sorted():
    """The candidate-edge lists the RNG indexes into must enumerate
    each row in sorted order, so their layout is a function of the
    graph alone (the property the RPR003 fix established)."""
    net = random_regular_network(12, 4, hosts_per_switch=2, rng=9)
    adj = [set(row) for row in net.adjacency()]
    edges = [
        (a, b) for a in range(len(adj)) for b in sorted(adj[a]) if a < b
    ]
    by_row = {}
    for a, b in edges:
        by_row.setdefault(a, []).append(b)
    for row in by_row.values():
        assert row == sorted(row)
