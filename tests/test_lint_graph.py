"""Units for the whole-program layer: module summaries, the project
call graph, and interprocedural taint (``repro.lint.graph`` /
``repro.lint.dataflow``)."""

import textwrap

import pytest

from repro.lint.dataflow import TaintEngine, classify_source
from repro.lint.graph import (
    ProjectGraph,
    module_name_for,
    source_digest,
    summarize_module,
)


def _project(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path and build the graph."""
    summaries = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    for rel in files:
        path = tmp_path / rel
        summaries.append(
            summarize_module(path.read_text(), str(path))
        )
    return ProjectGraph(summaries)


class TestModuleNames:
    def test_bare_file(self, tmp_path):
        path = tmp_path / "solo.py"
        path.write_text("x = 1\n")
        assert module_name_for(path) == ("solo", False)

    def test_package_walk(self, tmp_path):
        (tmp_path / "pkg" / "sub").mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "mod.py").write_text("x = 1\n")
        name, is_pkg = module_name_for(tmp_path / "pkg" / "sub" / "mod.py")
        assert name == "pkg.sub.mod"
        assert not is_pkg
        name, is_pkg = module_name_for(tmp_path / "pkg" / "sub" / "__init__.py")
        assert name == "pkg.sub"
        assert is_pkg


class TestSummaries:
    def test_digest_is_content_hash(self):
        assert source_digest("x = 1\n") == source_digest("x = 1\n")
        assert source_digest("x = 1\n") != source_digest("x = 2\n")

    def test_calls_reads_and_fields(self, tmp_path):
        source = textwrap.dedent(
            """\
            from dataclasses import dataclass, field

            @dataclass
            class Result:
                latency: float
                metrics: dict = field(compare=False, default_factory=dict)

            def consume(params):
                total = params.warmup + params.measure
                return Result(latency=float(total))
            """
        )
        summary = summarize_module(source, "mod.py", module="mod")
        cls = summary.classes["Result"]
        by_name = {f.name: f for f in cls.fields}
        assert by_name["latency"].compare
        assert not by_name["metrics"].compare
        fn = summary.functions["consume"]
        assert {"warmup", "measure"} <= fn.attr_reads
        call_targets = {c.target for c in fn.calls}
        assert "Result" in call_targets
        (result_call,) = [c for c in fn.calls if c.target == "Result"]
        assert result_call.keywords == ("latency",)

    def test_str_set_constants_and_pop_literals(self, tmp_path):
        source = textwrap.dedent(
            """\
            EXCLUDED = frozenset({"fast_path", "engine"})

            def make_key(payload):
                payload.pop("fast_path", None)
                return payload
            """
        )
        summary = summarize_module(source, "mod.py", module="mod")
        assert set(summary.str_sets["EXCLUDED"]) == {"fast_path", "engine"}
        (pop_call,) = [
            c for c in summary.functions["make_key"].calls
            if c.target.endswith(".pop")
        ]
        assert pop_call.str_arg == "fast_path"

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            summarize_module("def broken(:\n", "bad.py")


class TestCallGraph:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/a.py": """\
            import time

            from .b import helper

            def outer(x):
                return middle(x)

            def middle(x):
                return helper(x)

            def local_clock():
                return time.monotonic()
            """,
        "pkg/b.py": """\
            import time

            def helper(x):
                return time.time() + x
            """,
    }

    def test_internal_edges_resolve_across_modules(self, tmp_path):
        project = _project(tmp_path, self.FILES)
        assert "pkg.a.middle" in project.callees("pkg.a.outer")
        assert "pkg.b.helper" in project.callees("pkg.a.middle")

    def test_external_calls_are_canonical(self, tmp_path):
        project = _project(tmp_path, self.FILES)
        externals = {c for c, _ in project.external_calls("pkg.b.helper")}
        assert "time.time" in externals

    def test_reachable_and_chain(self, tmp_path):
        project = _project(tmp_path, self.FILES)
        closure = project.reachable(["pkg.a.outer"])
        assert closure == {"pkg.a.outer", "pkg.a.middle", "pkg.b.helper"}
        chain = project.call_chain("pkg.a.outer", "pkg.b.helper")
        assert chain == ["pkg.a.outer", "pkg.a.middle", "pkg.b.helper"]

    def test_unresolvable_calls_add_no_edges(self, tmp_path):
        project = _project(tmp_path, {
            "solo.py": """\
                def dynamic(callback):
                    return callback()
                """,
        })
        assert project.callees("solo.dynamic") == frozenset()
        assert project.external_calls("solo.dynamic") == ()

    def test_bare_builtin_resolves_external(self, tmp_path):
        project = _project(tmp_path, {
            "solo.py": """\
                def key_of(obj):
                    return hash(obj)
                """,
        })
        externals = {c for c, _ in project.external_calls("solo.key_of")}
        assert externals == {"hash"}

    def test_shadowed_builtin_does_not_resolve(self, tmp_path):
        project = _project(tmp_path, {
            "solo.py": """\
                def hash(x):
                    return x

                def key_of(obj):
                    return hash(obj)
                """,
        })
        assert "pkg" not in project.modules
        externals = {c for c, _ in project.external_calls("solo.key_of")}
        assert "hash" not in externals

    def test_read_closure_includes_helpers(self, tmp_path):
        project = _project(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/engine.py": """\
                from .util import expand

                def run(params):
                    return expand(params)
                """,
            "pkg/util.py": """\
                def expand(params):
                    return params.depth * 2
                """,
        })
        engine = project.find_module("pkg.engine")
        assert "depth" in project.read_closure(engine)


class TestTaint:
    def test_classify_numpy_alias(self):
        assert classify_source("np.random.shuffle") is not None
        assert classify_source("numpy.random.shuffle") is not None
        assert classify_source("numpy.zeros") is None

    def test_transitive_hit_with_chain(self, tmp_path):
        project = _project(tmp_path, TestCallGraph.FILES)
        engine = TaintEngine(project)
        hits = engine.hits_from("pkg.a.outer")
        assert len(hits) == 1
        (hit,) = hits
        assert hit.source == "time.time"
        assert hit.chain == ("pkg.a.outer", "pkg.a.middle", "pkg.b.helper")
        assert hit.chain_text() == "outer() -> middle() -> helper()"

    def test_direct_hit(self, tmp_path):
        project = _project(tmp_path, TestCallGraph.FILES)
        engine = TaintEngine(project)
        hits = engine.hits_from("pkg.a.local_clock")
        assert [h.source for h in hits] == ["time.monotonic"]
        assert hits[0].chain == ("pkg.a.local_clock",)

    def test_tainted_functions_fixpoint(self, tmp_path):
        project = _project(tmp_path, TestCallGraph.FILES)
        engine = TaintEngine(project)
        tainted = engine.tainted_functions()
        assert {"pkg.b.helper", "pkg.a.middle", "pkg.a.outer",
                "pkg.a.local_clock"} <= tainted

    def test_pure_function_is_clean(self, tmp_path):
        project = _project(tmp_path, {
            "solo.py": """\
                def pure(x):
                    return x + 1
                """,
        })
        engine = TaintEngine(project)
        assert engine.hits_from("solo.pure") == []
        assert engine.tainted_functions() == set()
