"""Golden-snapshot determinism gate for the cycle-level simulator.

``tests/data/golden_load_sweep.json`` was captured from the engine
*before* the observability layer landed.  Reproducing it bit-for-bit
proves two things at once: the engine is still deterministic across
runs, and threading observer hooks through the hot loops changed no
simulated number.  If an intentional engine change breaks this,
regenerate the snapshot with the recipe below and say so in the
commit message.

Recipe::

    topo, _ = rfc_with_updown(8, 16, 3, rng=7)
    params = SimulationParams(measure_cycles=400, warmup_cycles=100, seed=3)
    results = load_sweep(topo, "uniform", [0.2, 0.5, 0.8], params)
    json.dump([r.core_dict() for r in results], fh, indent=1, sort_keys=True)
"""

import json
from pathlib import Path

import pytest

import repro.accel.sim as accel_sim
from repro.core.rfc import rfc_with_updown
from repro.obs import MetricsObserver
from repro.simulation.config import SimulationParams
from repro.simulation.engine import load_sweep, simulate
from repro.simulation.traffic import make_traffic

GOLDEN = Path(__file__).parent / "data" / "golden_load_sweep.json"
GOLDEN_VEC = Path(__file__).parent / "data" / "golden_vectorized_bench.json"
PARAMS = SimulationParams(measure_cycles=400, warmup_cycles=100, seed=3)
LOADS = [0.2, 0.5, 0.8]


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def topo():
    topo, _ = rfc_with_updown(8, 16, 3, rng=7)
    return topo


def test_load_sweep_matches_golden(topo, golden):
    results = load_sweep(topo, "uniform", LOADS, PARAMS)
    assert [r.core_dict() for r in results] == golden


@pytest.mark.parametrize("engine", ["reference", "fast", "vectorized"])
def test_every_engine_matches_golden(topo, golden, engine):
    """Each engine reproduces the pre-fast-path snapshot -- pinning
    *all* engines to the same bit-for-bit history, not just to each
    other."""
    params = PARAMS.scaled(engine=engine)
    results = load_sweep(topo, "uniform", LOADS, params)
    assert [r.core_dict() for r in results] == golden


@pytest.mark.parametrize("batch_min", [0, 1 << 40])
def test_vectorized_regimes_match_bench_golden(batch_min):
    """Golden-signature pin for the vectorized engine specifically, on
    (a scaled-down cut of) the ``BENCH_engine.json`` workload, in both
    execution regimes: batched numpy viability forced on (0) and
    incremental masks only (huge threshold).  The snapshot was captured
    from the *reference* engine, so this is also a cross-engine pin.

    Recipe::

        topo, _ = rfc_with_updown(8, 32, 3, rng=11)
        params = SimulationParams(measure_cycles=400, warmup_cycles=100,
                                  seed=5)
        traffic = make_traffic("uniform", topo.num_terminals,
                               rng=params.seed + 7_919)
        result = simulate(topo, traffic, 0.7, params)
        json.dump(result.core_dict(), fh, indent=1, sort_keys=True)
    """
    golden_vec = json.loads(GOLDEN_VEC.read_text())
    topo, _ = rfc_with_updown(8, 32, 3, rng=11)
    params = SimulationParams(
        measure_cycles=400, warmup_cycles=100, seed=5, engine="vectorized"
    )
    traffic = make_traffic(
        "uniform", topo.num_terminals, rng=params.seed + 7_919
    )
    saved = accel_sim._BATCH_MIN_UNITS
    accel_sim._BATCH_MIN_UNITS = batch_min
    try:
        result = simulate(topo, traffic, 0.7, params)
    finally:
        accel_sim._BATCH_MIN_UNITS = saved
    assert result.core_dict() == golden_vec


def test_instrumented_sweep_matches_golden(topo, golden):
    """The pre-observability snapshot is reproduced even while a
    metrics observer watches every event."""
    for load, expected in zip(LOADS, golden):
        # Same traffic seed derivation load_sweep uses internally.
        traffic = make_traffic(
            "uniform", topo.num_terminals, rng=PARAMS.seed + 7_919
        )
        result = simulate(
            topo, traffic, load, PARAMS, observer=MetricsObserver()
        )
        assert result.core_dict() == expected


def test_golden_bytes_are_canonical(golden):
    """The checked-in file itself is sorted-key JSON (so regenerating
    it with the recipe gives a clean diff)."""
    canonical = json.dumps(golden, indent=1, sort_keys=True) + "\n"
    assert GOLDEN.read_text() == canonical
