"""Field-axiom tests for GF(p^n)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topologies.galois import (
    GaloisField,
    field,
    is_prime,
    is_prime_power,
    nearest_prime_power,
    prime_power_decomposition,
)

FIELD_ORDERS = [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27]


class TestPrimePredicates:
    def test_is_prime(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23}
        for n in range(25):
            assert is_prime(n) == (n in primes)

    def test_prime_power_decomposition(self):
        assert prime_power_decomposition(8) == (2, 3)
        assert prime_power_decomposition(9) == (3, 2)
        assert prime_power_decomposition(7) == (7, 1)
        assert prime_power_decomposition(12) is None
        assert prime_power_decomposition(1) is None

    def test_is_prime_power(self):
        assert all(is_prime_power(q) for q in FIELD_ORDERS)
        assert not any(is_prime_power(q) for q in (1, 6, 10, 12, 15, 18))

    def test_nearest_prime_power(self):
        assert nearest_prime_power(6) == 5
        assert nearest_prime_power(7) == 7
        assert nearest_prime_power(15) == 16
        assert nearest_prime_power(1) == 2


class TestFieldAxioms:
    @pytest.mark.parametrize("q", FIELD_ORDERS)
    def test_additive_group(self, q):
        gf = field(q)
        for a in gf.elements():
            assert gf.add(a, 0) == a
            assert gf.add(a, gf.neg(a)) == 0
        # Commutativity on a sample.
        for a in range(min(q, 6)):
            for b in range(min(q, 6)):
                assert gf.add(a, b) == gf.add(b, a)

    @pytest.mark.parametrize("q", FIELD_ORDERS)
    def test_multiplicative_group(self, q):
        gf = field(q)
        for a in range(1, q):
            assert gf.mul(a, 1) == a
            assert gf.mul(a, gf.inv(a)) == 1
        with pytest.raises(ZeroDivisionError):
            gf.inv(0)

    @pytest.mark.parametrize("q", [4, 8, 9, 16, 27])
    def test_extension_distributivity(self, q):
        gf = field(q)
        sample = list(range(min(q, 8)))
        for a in sample:
            for b in sample:
                for c in sample[:4]:
                    left = gf.mul(a, gf.add(b, c))
                    right = gf.add(gf.mul(a, b), gf.mul(a, c))
                    assert left == right

    @pytest.mark.parametrize("q", [4, 9, 8])
    def test_multiplication_is_a_latin_square(self, q):
        gf = field(q)
        for a in range(1, q):
            row = {gf.mul(a, b) for b in range(1, q)}
            assert row == set(range(1, q))

    def test_pow(self):
        gf = field(7)
        assert gf.pow(3, 0) == 1
        assert gf.pow(3, 6) == 1  # Fermat
        assert gf.pow(3, -1) == gf.inv(3)

    def test_characteristic_sum(self):
        gf = field(9)
        acc = 0
        for _ in range(3):
            acc = gf.add(acc, 1)
        assert acc == 0  # characteristic 3

    def test_rejects_non_prime_power(self):
        with pytest.raises(ValueError):
            GaloisField(6)

    def test_rejects_out_of_range_elements(self):
        gf = field(5)
        with pytest.raises(ValueError):
            gf.add(5, 0)

    @settings(max_examples=40, deadline=None)
    @given(
        q=st.sampled_from([4, 8, 9]),
        data=st.data(),
    )
    def test_property_associativity(self, q, data):
        gf = field(q)
        a = data.draw(st.integers(0, q - 1))
        b = data.draw(st.integers(0, q - 1))
        c = data.draw(st.integers(0, q - 1))
        assert gf.add(gf.add(a, b), c) == gf.add(a, gf.add(b, c))
        assert gf.mul(gf.mul(a, b), c) == gf.mul(a, gf.mul(b, c))
