"""Engine option-interaction coverage (valiant x direct, iterations,
arbiter x adaptive)."""

import pytest

from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator, simulate
from repro.simulation.traffic import make_traffic

FAST = SimulationParams(measure_cycles=400, warmup_cycles=120, seed=5)


class TestValiantOnDirect:
    def test_valiant_flag_ignored_on_direct(self, rrn_16):
        """Valiant is a folded Clos mechanism; direct runs ignore it."""
        traffic = make_traffic("uniform", rrn_16.num_terminals, rng=1)
        result = simulate(rrn_16, traffic, 0.3, FAST.scaled(valiant=True))
        assert result.accepted_load == pytest.approx(0.3, abs=0.08)


class TestIterationInteractions:
    def test_iterations_with_adaptive(self, cft_8_3):
        params = FAST.scaled(arbitration_iterations=2,
                             up_selection="adaptive")
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=2)
        result = simulate(cft_8_3, traffic, 0.8, params)
        assert 0.5 <= result.accepted_load <= 0.95

    def test_iterations_with_rotating_arbiter(self, cft_8_3):
        params = FAST.scaled(arbitration_iterations=3, arbiter="rotating")
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=3)
        result = simulate(cft_8_3, traffic, 0.5, params)
        assert result.accepted_load == pytest.approx(0.5, abs=0.08)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            SimulationParams(arbitration_iterations=0)


class TestValiantWithOptions:
    def test_valiant_plus_adaptive(self, rfc_medium):
        params = FAST.scaled(valiant=True, up_selection="adaptive")
        traffic = make_traffic(
            "random-pairing", rfc_medium.num_terminals, rng=4
        )
        sim = Simulator(rfc_medium, traffic, 0.2, params)
        result = sim.run()
        assert sim.unroutable_packets == 0
        assert result.accepted_load == pytest.approx(0.2, abs=0.06)

    def test_valiant_with_two_vcs_only(self, rfc_medium):
        params = FAST.scaled(valiant=True, virtual_channels=2)
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=5)
        result = simulate(rfc_medium, traffic, 0.2, params)
        assert result.measured_packets > 0


class TestUtilizationAcrossModes:
    @pytest.mark.parametrize("valiant", [False, True])
    def test_capacity_respected(self, rfc_medium, valiant):
        traffic = make_traffic("uniform", rfc_medium.num_terminals, rng=6)
        sim = Simulator(
            rfc_medium, traffic, 0.9, FAST.scaled(valiant=valiant)
        )
        sim.run()
        assert sim.link_utilization()["max"] <= 1.0 + 1e-9

    def test_valiant_raises_link_load(self, rfc_medium):
        means = {}
        for valiant in (False, True):
            traffic = make_traffic(
                "uniform", rfc_medium.num_terminals, rng=7
            )
            sim = Simulator(
                rfc_medium, traffic, 0.3, FAST.scaled(valiant=valiant)
            )
            sim.run()
            means[valiant] = sim.link_utilization()["mean"]
        # Doubling path lengths roughly doubles link occupancy.
        assert means[True] > 1.4 * means[False]
