"""The run pipeline around the checkers: SARIF output, the incremental
per-file cache, baselines, ``--changed-only`` and the exit-code
contract (0 clean / 1 findings / 2 internal error)."""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.lint.base import Checker, ProjectChecker
from repro.lint.cache import AnalysisCache, analyzer_version
from repro.lint.runner import main as lint_main
from repro.lint.runner import run_analysis

VIOLATION = textwrap.dedent(
    """\
    import random

    def wire(items):
        random.shuffle(items)
        return items
    """
)

CLEAN = textwrap.dedent(
    """\
    def double(x):
        return 2 * x
    """
)


@pytest.fixture
def violation_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(VIOLATION)
    return path


class TestSarif:
    def test_log_shape(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "dirty.py").write_text(VIOLATION)
        assert lint_main(["dirty.py", "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"RPR001", "RPR101", "RPR102", "RPR103", "RPR104",
                "RPR000", "RPR999"} <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "RPR001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 4
        uri = location["artifactLocation"]["uri"]
        assert "\\" not in uri and not uri.startswith("/")

    def test_rules_carry_descriptions(self, violation_file, capsys):
        lint_main([str(violation_file), "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        for rule in log["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning"
            )

    def test_output_is_deterministic(self, violation_file, capsys):
        lint_main([str(violation_file), "--format", "sarif"])
        first = capsys.readouterr().out
        lint_main([str(violation_file), "--format", "sarif"])
        assert capsys.readouterr().out == first

    def test_output_file(self, violation_file, tmp_path, capsys):
        out = tmp_path / "report.sarif"
        code = lint_main(
            [str(violation_file), "--format", "sarif", "--output", str(out)]
        )
        assert code == 1
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"]
        assert "report.sarif" in capsys.readouterr().out


class TestIncrementalCache:
    def _tree(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "one.py").write_text(CLEAN)
        (pkg / "two.py").write_text(VIOLATION)
        (pkg / "three.py").write_text(CLEAN.replace("double", "triple"))
        return pkg

    def test_second_run_reuses_everything(self, tmp_path):
        pkg = self._tree(tmp_path)
        cache_dir = tmp_path / "cache"
        first = run_analysis([pkg], cache=AnalysisCache(cache_dir))
        assert first.analyzed == 4 and first.reused == 0
        second = run_analysis([pkg], cache=AnalysisCache(cache_dir))
        assert second.analyzed == 0 and second.reused == 4
        assert second.findings == first.findings

    def test_editing_one_file_reanalyzes_only_it(self, tmp_path):
        pkg = self._tree(tmp_path)
        cache_dir = tmp_path / "cache"
        run_analysis([pkg], cache=AnalysisCache(cache_dir))
        (pkg / "one.py").write_text(CLEAN + "\nX = 1\n")
        rerun = run_analysis([pkg], cache=AnalysisCache(cache_dir))
        assert rerun.analyzed == 1 and rerun.reused == 3

    def test_cached_findings_survive_reuse(self, tmp_path):
        pkg = self._tree(tmp_path)
        cache_dir = tmp_path / "cache"
        first = run_analysis([pkg], cache=AnalysisCache(cache_dir))
        second = run_analysis([pkg], cache=AnalysisCache(cache_dir))
        assert [f.code for f in second.findings] == ["RPR001"]
        assert second.findings == first.findings

    def test_version_skew_invalidates(self, tmp_path):
        pkg = self._tree(tmp_path)
        cache_dir = tmp_path / "cache"
        run_analysis([pkg], cache=AnalysisCache(cache_dir))
        payload = json.loads((cache_dir / "lint-cache.json").read_text())
        payload["version"] = "0:stale"
        (cache_dir / "lint-cache.json").write_text(json.dumps(payload))
        rerun = run_analysis([pkg], cache=AnalysisCache(cache_dir))
        assert rerun.analyzed == 4 and rerun.reused == 0

    def test_corrupt_cache_is_empty_not_fatal(self, tmp_path):
        pkg = self._tree(tmp_path)
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "lint-cache.json").write_text("{not json")
        report = run_analysis([pkg], cache=AnalysisCache(cache_dir))
        assert report.analyzed == 4
        assert [f.code for f in report.findings] == ["RPR001"]

    def test_analyzer_version_names_all_codes(self):
        version = analyzer_version()
        for code in ("RPR001", "RPR101", "RPR104"):
            assert code in version

    def test_cli_stats(self, tmp_path, capsys):
        pkg = self._tree(tmp_path)
        cache_dir = tmp_path / "cache"
        lint_main([str(pkg), "--cache-dir", str(cache_dir), "--stats"])
        capsys.readouterr()
        lint_main([str(pkg), "--cache-dir", str(cache_dir), "--stats"])
        err = capsys.readouterr().err
        assert "4 files" in err
        assert "0 analyzed" in err
        assert "4 reused" in err


class TestBaseline:
    def test_ratchet_workflow(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(VIOLATION)
        baseline = tmp_path / "baseline.json"

        assert lint_main(
            [str(dirty), "--write-baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        assert len(payload["entries"]) == 1
        assert "RPR001" in payload["entries"][0]

        # Baselined finding no longer fails the run...
        assert lint_main([str(dirty), "--baseline", str(baseline)]) == 0
        assert "clean" in capsys.readouterr().out

        # ...but a new, distinct finding still does.  (Fingerprints
        # deliberately omit line numbers, so an identical second
        # violation would be masked -- introduce a different one.)
        dirty.write_text(VIOLATION + "\n\ndef pick(xs):\n"
                         "    return random.choice(xs)\n")
        assert lint_main([str(dirty), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "1 finding" in out
        assert "random.choice" in out

    def test_malformed_baseline_is_exit_two(self, violation_file,
                                            tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}')
        assert lint_main(
            [str(violation_file), "--baseline", str(bad)]
        ) == 2
        assert "baseline" in capsys.readouterr().err

    def test_baseline_has_no_absolute_paths(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "dirty.py").write_text(VIOLATION)
        baseline = tmp_path / "baseline.json"
        lint_main(["dirty.py", "--write-baseline", str(baseline)])
        for entry in json.loads(baseline.read_text())["entries"]:
            assert not entry.startswith("/")


class TestChangedOnly:
    def _git(self, cwd, *args):
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
            cwd=cwd, check=True, capture_output=True,
        )

    def test_reports_only_changed_files(self, tmp_path, monkeypatch,
                                        capsys):
        self._git(tmp_path, "init", "-q")
        committed = tmp_path / "old.py"
        committed.write_text(VIOLATION)
        (tmp_path / "clean.py").write_text(CLEAN)
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "seed")
        fresh = tmp_path / "new.py"
        fresh.write_text(VIOLATION.replace("wire", "rewire"))
        monkeypatch.chdir(tmp_path)

        # Full run sees both findings; changed-only sees the new file's.
        assert lint_main([str(tmp_path)]) == 1
        assert capsys.readouterr().out.count("RPR001") == 2
        assert lint_main([str(tmp_path), "--changed-only"]) == 1
        out = capsys.readouterr().out
        assert out.count("RPR001") == 1
        assert "new.py" in out
        assert "old.py" not in out

    def test_clean_changed_set_exits_zero(self, tmp_path, monkeypatch,
                                          capsys):
        self._git(tmp_path, "init", "-q")
        dirty = tmp_path / "old.py"
        dirty.write_text(VIOLATION)
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "seed")
        (tmp_path / "new.py").write_text(CLEAN)
        monkeypatch.chdir(tmp_path)
        assert lint_main([str(tmp_path), "--changed-only"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_outside_git_is_exit_two(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "file.py").write_text(CLEAN)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nonexistent"))
        assert lint_main([str(tmp_path), "--changed-only"]) == 2
        assert "git" in capsys.readouterr().err


class _CrashingChecker(Checker):
    CODE = "RPR001"
    SUMMARY = "crash fixture"

    def check(self, ctx):
        raise RuntimeError("checker exploded")
        yield  # pragma: no cover


class _CrashingProjectChecker(ProjectChecker):
    CODE = "RPR101"
    SUMMARY = "crash fixture"

    def check_project(self, project):
        raise RuntimeError("project pass exploded")
        yield  # pragma: no cover


class TestErgonomics:
    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path, capsys):
        (tmp_path / "good.py").write_text(VIOLATION)
        (tmp_path / "bad.py").write_text("def broken(:\n")
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPR000" in out
        # The parse error does not hide findings elsewhere.
        assert "RPR001" in out

    def test_file_checker_crash_is_contained(self, tmp_path):
        (tmp_path / "one.py").write_text(CLEAN)
        (tmp_path / "two.py").write_text(CLEAN.replace("double", "triple"))
        report = run_analysis(
            [tmp_path], checkers=[_CrashingChecker()], project_checkers=[]
        )
        assert len(report.internal_errors) == 2
        assert "checker exploded" in report.internal_errors[0]

    def test_project_checker_crash_is_contained(self, tmp_path):
        (tmp_path / "one.py").write_text(CLEAN)
        report = run_analysis(
            [tmp_path], checkers=[],
            project_checkers=[_CrashingProjectChecker()],
        )
        assert len(report.internal_errors) == 1
        assert "project pass exploded" in report.internal_errors[0]

    def test_no_project_skips_project_passes(self, tmp_path, capsys):
        # A tree that would raise an RPR104 finding stays clean when
        # the project phase is disabled.
        obs = tmp_path / "obs"
        obs.mkdir()
        (obs / "__init__.py").write_text("")
        (obs / "hooks.py").write_text(textwrap.dedent(
            """\
            class Meddler:
                def on_inject(self, sim, packet):
                    sim.queue.append(packet)
            """
        ))
        assert lint_main([str(tmp_path)]) == 1
        capsys.readouterr()
        assert lint_main([str(tmp_path), "--no-project"]) == 0

    def test_cli_forwards_new_flags(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        (tmp_path / "dirty.py").write_text(VIOLATION)
        out_file = tmp_path / "report.sarif"
        code = cli_main([
            "lint", str(tmp_path), "--format", "sarif",
            "--output", str(out_file),
        ])
        assert code == 1
        assert json.loads(out_file.read_text())["version"] == "2.1.0"
