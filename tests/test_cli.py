"""CLI smoke tests (argument parsing + handler wiring)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "rfc"])
        assert args.command == "generate"
        assert args.radix == 12
        assert args.levels == 3

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "fig5", "--full"])
        assert args.name == "fig5"
        assert args.full
        assert args.workers == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_experiment_exec_flags(self):
        args = build_parser().parse_args(
            ["experiment", "fig8", "--workers", "4",
             "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache


class TestCommands:
    def test_generate_rfc(self, capsys):
        assert main(["generate", "rfc", "--radix", "8", "--leaves", "16",
                     "--check-updown", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "RFC(R=8" in out
        assert "up/down routable" in out

    def test_generate_cft(self, capsys):
        assert main(["generate", "cft", "--radix", "4", "--levels", "3"]) == 0
        assert "T=16" in capsys.readouterr().out

    def test_generate_oft(self, capsys):
        assert main(["generate", "oft", "--radix", "6", "--levels", "2"]) == 0
        assert "OFT" in capsys.readouterr().out

    def test_generate_rrn(self, capsys):
        assert main(["generate", "rrn", "--switches", "16",
                     "--radix", "6"]) == 0
        assert "RRN" in capsys.readouterr().out

    def test_generate_kary(self, capsys):
        assert main(["generate", "kary", "--radix", "4",
                     "--levels", "2"]) == 0
        assert "2-ary" in capsys.readouterr().out

    def test_analyze(self, capsys):
        assert main(["analyze", "--radix", "8", "--leaves", "16",
                     "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "threshold radix" in out
        assert "leaf diameter" in out

    def test_simulate(self, capsys):
        assert main([
            "simulate", "cft", "--radix", "4", "--levels", "2",
            "--load", "0.3", "--cycles", "300", "--warmup", "100",
        ]) == 0
        assert "accepted" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "sec5"]) == 0
        assert "Section 5" in capsys.readouterr().out

    @pytest.mark.slow
    def test_experiment_with_workers_and_cache(self, capsys, tmp_path):
        """fig12 quick through the executor: parallel cold run, then a
        warm run replayed entirely from the --cache-dir."""
        argv = ["experiment", "fig12", "--workers", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "exec: 16 points (0 cached, 16 simulated)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "exec: 16 points (16 cached, 0 simulated)" in warm

        def rows(out):
            return [line for line in out.splitlines()
                    if not line.startswith("note: exec:")]

        assert rows(cold) == rows(warm)

    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        assert "equal-resources-11k" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_parser_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["simulate", "cft", "--trace", "/tmp/t.jsonl",
             "--metrics-out", "/tmp/m.json"]
        )
        assert args.trace == "/tmp/t.jsonl"
        assert args.metrics_out == "/tmp/m.json"
        args = build_parser().parse_args(
            ["experiment", "fig8", "--metrics-out", "/tmp/m.json"]
        )
        assert args.metrics_out == "/tmp/m.json"

    def test_simulate_writes_trace_and_metrics(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main([
            "simulate", "cft", "--radix", "4", "--levels", "2",
            "--load", "0.3", "--cycles", "300", "--warmup", "100",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "metrics:" in out
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert records[0]["ev"] == "run_start"
        assert records[-1]["ev"] == "run_end"
        export = json.loads(metrics.read_text())
        assert export["counters"]["eject.packets"] == \
            records[-1]["delivered"]

    def test_simulate_obs_flags_do_not_change_results(self, capsys,
                                                      tmp_path):
        argv = ["simulate", "cft", "--radix", "4", "--levels", "2",
                "--load", "0.3", "--cycles", "300", "--warmup", "100"]
        assert main(argv) == 0
        bare = capsys.readouterr().out.splitlines()[:2]
        assert main(argv + ["--trace", str(tmp_path / "t.jsonl"),
                            "--metrics-out",
                            str(tmp_path / "m.json")]) == 0
        inst = capsys.readouterr().out.splitlines()[:2]
        assert bare == inst

    @pytest.mark.slow
    def test_experiment_metrics_out(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "exp_metrics.json"
        assert main(["experiment", "fig8",
                     "--metrics-out", str(metrics)]) == 0
        assert "sweep export(s)" in capsys.readouterr().out
        exports = json.loads(metrics.read_text())
        assert exports  # at least one sweep recorded
        for label, export in exports.items():
            assert export["counters"]["eject.packets"] > 0
