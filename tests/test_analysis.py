"""NetworkReport aggregation and batch-means tests."""

import pytest

from repro.analysis import analyze_network
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.traffic import make_traffic

FAST = SimulationParams(measure_cycles=600, warmup_cycles=200, seed=1)


class TestAnalyzeFoldedClos:
    def test_rfc_report(self, rfc_medium):
        report = analyze_network(rfc_medium, rng=1, fault_trials=3)
        assert report.kind == "folded-clos"
        assert report.terminals == rfc_medium.num_terminals
        assert report.levels == 3
        assert report.leaf_diameter == 4
        assert report.updown_routable is True
        assert report.routable_probability == pytest.approx(1.0, abs=0.01)
        assert report.mean_ecmp_width > 1
        assert report.fault_tolerance_percent > 0

    def test_cft_report(self, cft_8_3):
        report = analyze_network(cft_8_3, rng=2, fault_trials=0)
        assert report.updown_routable is True
        assert report.fault_tolerance_percent is None  # trials disabled
        assert report.leaf_diameter == 4

    def test_render(self, cft_4_3):
        text = analyze_network(cft_4_3, rng=3, fault_trials=2).render()
        assert "up/down routable = True" in text
        assert "terminals" in text

    def test_non_routable_skips_faults(self):
        from repro.topologies.base import FoldedClos

        split = FoldedClos([4, 2], [[[0], [0], [1], [1]]], 1, 4)
        report = analyze_network(split, rng=4)
        assert report.updown_routable is False
        assert report.fault_tolerance_percent is None


class TestAnalyzeDirect:
    def test_rrn_report(self, rrn_16):
        report = analyze_network(rrn_16, rng=5)
        assert report.kind == "direct"
        assert report.levels is None
        assert report.updown_routable is None
        assert report.spectral_gap > 0
        assert "mean" in report.render()


class TestBatchMeans:
    def test_batches_sum_to_accepted(self, cft_8_3):
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=1)
        sim = Simulator(cft_8_3, traffic, 0.5, FAST)
        result = sim.run()
        batches = sim.batch_accepted_loads()
        assert len(batches) == 10
        assert sum(batches) / len(batches) == pytest.approx(
            result.accepted_load, rel=0.01
        )

    def test_batches_stable_in_steady_state(self, cft_8_3):
        traffic = make_traffic("uniform", cft_8_3.num_terminals, rng=2)
        sim = Simulator(cft_8_3, traffic, 0.4, FAST)
        sim.run()
        batches = sim.batch_accepted_loads()
        mean = sum(batches) / len(batches)
        assert all(abs(b - mean) < 0.25 for b in batches)

    def test_empty_without_deliveries(self, cft_8_3):
        from repro.simulation.stats import SimStats

        stats = SimStats(warmup=0, horizon=100)
        assert stats.batch_accepted_loads(8) == []


class TestReportCli:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "topo.json"
        assert main([
            "export", "rfc", str(path), "--radix", "8", "--leaves", "16",
            "--seed", "1",
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(path), "--fault-trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "folded-clos" in out
        assert "diversity" in out
