"""Edge-case coverage: non-minimal routing, Def-4.1 variants under the
router, flow-route lengths, metric options."""

import random

import pytest

from repro.core.ancestors import has_updown_routing_of
from repro.core.rfc import hashnet, random_k_ary_tree
from repro.graphs.metrics import distance_histogram
from repro.routing.updown import UpDownRouter
from repro.simulation.flowlevel import flow_routes


class TestNonMinimalPaths:
    def test_nonminimal_paths_are_valid_updown(self, rfc_medium):
        router = UpDownRouter.for_topology(rfc_medium)
        rng = random.Random(3)
        n1 = rfc_medium.num_leaves
        longer_seen = False
        for _ in range(40):
            a, b = rng.randrange(n1), rng.randrange(n1)
            path = router.path(a, b, rng=rng, minimal=False)
            assert path[0] == (0, a) and path[-1] == (0, b)
            levels = [lvl for lvl, _ in path]
            apex = levels.index(max(levels))
            assert levels[: apex + 1] == sorted(levels[: apex + 1])
            assert levels[apex:] == sorted(levels[apex:], reverse=True)
            if len(path) - 1 > router.path_length(a, b):
                longer_seen = True
        # Non-minimal mode should wander at least occasionally.
        assert longer_seen or rfc_medium.num_levels == 2

    def test_nonminimal_never_shorter(self, rfc_medium):
        router = UpDownRouter.for_topology(rfc_medium)
        rng = random.Random(4)
        n1 = rfc_medium.num_leaves
        for _ in range(30):
            a, b = rng.randrange(n1), rng.randrange(n1)
            path = router.path(a, b, rng=rng, minimal=False)
            assert len(path) - 1 >= router.path_length(a, b)


class TestVariantRouting:
    def test_hashnet_routes_when_routable(self):
        net = hashnet(12, 5, 3, rng=2)
        if not has_updown_routing_of(net):
            pytest.skip("sample not routable (small hashnet)")
        router = UpDownRouter.for_topology(net)
        for a in range(0, 12, 3):
            for b in range(0, 12, 5):
                path = router.path(a, b, rng=1)
                assert path[0] == (0, a) and path[-1] == (0, b)

    def test_random_kary_routes(self):
        topo = random_k_ary_tree(4, 2, rng=3)
        router = UpDownRouter.for_topology(topo)
        assert router.path_length(0, 3) == 2


class TestFlowRouteLengths:
    def test_route_hop_counts_match_router(self, cft_8_3):
        router = UpDownRouter.for_topology(cft_8_3)
        hosts = cft_8_3.hosts_per_leaf
        pairs = [(0, 5 * hosts), (0, hosts), (3, 3 + hosts)]
        routes = flow_routes(cft_8_3, pairs, rng=1, router=router)
        for (src, dst), route in zip(pairs, routes):
            switch_hops = len(route) - 2  # minus inj/ej entries
            expected = router.path_length(
                src // hosts, dst // hosts
            )
            assert switch_hops == expected

    def test_injection_and_ejection_present(self, rfc_small):
        routes = flow_routes(rfc_small, [(0, 30), (1, 2)], rng=2)
        for route in routes:
            assert route[0][0] == "inj"
            assert route[-1][0] == "ej"


class TestMetricsOptions:
    def test_histogram_with_custom_sources(self):
        adj = [[1], [0, 2], [1]]
        hist = distance_histogram(adj, sources=[0])
        assert hist == {1: 1, 2: 1}

    def test_histogram_all_sources_default(self):
        adj = [[1], [0]]
        assert distance_histogram(adj) == {1: 2}
