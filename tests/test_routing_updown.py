"""Up/down ECMP router tests."""

import random

import pytest

from repro.core.ancestors import stages_of
from repro.routing.updown import RoutingError, UpDownRouter


def router_for(topo):
    return UpDownRouter.for_topology(topo)


def assert_updown_shape(path):
    """A valid up/down path rises monotonically then falls."""
    levels = [level for level, _ in path]
    apex = max(levels)
    apex_at = levels.index(apex)
    assert levels[: apex_at + 1] == sorted(levels[: apex_at + 1])
    assert levels[apex_at:] == sorted(levels[apex_at:], reverse=True)


class TestPathProperties:
    def test_paths_are_updown(self, rfc_medium):
        router = router_for(rfc_medium)
        rng = random.Random(5)
        n1 = rfc_medium.num_leaves
        for _ in range(60):
            a, b = rng.randrange(n1), rng.randrange(n1)
            path = router.path(a, b, rng=rng)
            assert path[0] == (0, a)
            assert path[-1] == (0, b)
            assert_updown_shape(path)

    def test_consecutive_hops_are_links(self, rfc_medium):
        router = router_for(rfc_medium)
        rng = random.Random(6)
        path = router.path(0, rfc_medium.num_leaves - 1, rng=rng)
        for (la, ia), (lb, ib) in zip(path, path[1:]):
            if lb == la + 1:
                assert ib in rfc_medium.up_neighbors(la, ia)
            else:
                assert lb == la - 1
                assert ib in rfc_medium.down_neighbors(la, ia)

    def test_minimal_length_matches(self, cft_8_3):
        router = router_for(cft_8_3)
        rng = random.Random(7)
        n1 = cft_8_3.num_leaves
        for _ in range(40):
            a, b = rng.randrange(n1), rng.randrange(n1)
            path = router.path(a, b, rng=rng)
            assert len(path) - 1 == router.path_length(a, b)

    def test_same_leaf(self, cft_8_3):
        router = router_for(cft_8_3)
        assert router.path(3, 3) == [(0, 3)]
        assert router.path_length(3, 3) == 0

    def test_cft_pod_locality(self, cft_8_3):
        """In a CFT, same-pod leaves route within the pod (length 2)."""
        router = router_for(cft_8_3)
        assert router.path_length(0, 1) == 2
        assert router.path_length(0, cft_8_3.num_leaves - 1) == 4


class TestNextHops:
    def test_deliver_at_destination(self, cft_8_3):
        router = router_for(cft_8_3)
        direction, hops = router.next_hops(0, 5, 5)
        assert direction == "deliver"
        assert hops == []

    def test_up_candidates_subset_of_neighbors(self, rfc_medium):
        router = router_for(rfc_medium)
        direction, hops = router.next_hops(0, 0, rfc_medium.num_leaves - 1)
        assert direction == "up"
        assert set(hops) <= set(rfc_medium.up_neighbors(0, 0))
        assert hops

    def test_nonminimal_superset(self, rfc_medium):
        router = router_for(rfc_medium)
        b = rfc_medium.num_leaves - 1
        _, minimal = router.next_hops(0, 0, b, minimal=True)
        _, any_valid = router.next_hops(0, 0, b, minimal=False)
        assert set(minimal) <= set(any_valid)

    def test_cft_all_ups_minimal_cross_pod(self, cft_8_3):
        """CFT symmetry: every up-port lies on a shortest route."""
        router = router_for(cft_8_3)
        b = cft_8_3.num_leaves - 1
        _, hops = router.next_hops(0, 0, b)
        assert set(hops) == set(cft_8_3.up_neighbors(0, 0))


class TestEcmpWidth:
    def test_cft_cross_pod_width(self, cft_4_3):
        """CFT(4,3): cross-pod pairs have Delta^(l-1) = 4 routes."""
        router = router_for(cft_4_3)
        assert router.ecmp_width(0, cft_4_3.num_leaves - 1) == 4

    def test_same_pod_width(self, cft_4_3):
        assert router_for(cft_4_3).ecmp_width(0, 1) == 2

    def test_identity(self, cft_4_3):
        assert router_for(cft_4_3).ecmp_width(2, 2) == 1


class TestFaultyRouting:
    def test_pruned_stage_dead_pair(self, rfc_small):
        """Cutting all of a leaf's up-links isolates it."""
        stages = [
            [list(row) for row in stage] for stage in stages_of(rfc_small)
        ]
        stages[0][0] = []
        router = UpDownRouter(rfc_small.level_sizes, stages)
        assert not router.reachable(0, 5)
        assert router.reachable(1, 5)
        with pytest.raises(RoutingError):
            router.path(0, 5, rng=1)

    def test_min_ascent_reports_negative(self, rfc_small):
        stages = [
            [list(row) for row in stage] for stage in stages_of(rfc_small)
        ]
        stages[0][0] = []
        router = UpDownRouter(rfc_small.level_sizes, stages)
        assert router.min_ascent(0, 0, 5) == -1


class TestConstruction:
    def test_stage_count_validation(self, rfc_small):
        with pytest.raises(ValueError):
            UpDownRouter(rfc_small.level_sizes, [])

    def test_descendants_of_roots_cover_all(self, rfc_medium):
        router = router_for(rfc_medium)
        top = rfc_medium.num_levels - 1
        full = (1 << rfc_medium.num_leaves) - 1
        union = 0
        for s in range(rfc_medium.level_sizes[top]):
            union |= router.descendants(top, s)
        assert union == full
