"""Strong/weak expansion tests."""

import pytest

from repro.core.ancestors import has_updown_routing_of
from repro.core.expansion import (
    ExpansionError,
    RewiringReport,
    expand_rfc,
    expand_rrn,
    strong_expansion_limit,
    weak_expand_rfc,
)
from repro.core.theory import rfc_max_leaves
from repro.topologies.rrn import random_regular_network


class TestRewiringReport:
    def test_merge(self):
        a = RewiringReport(1, 2, 3, 4)
        a.merge(RewiringReport(10, 20, 30, 40))
        assert (a.links_removed, a.links_added) == (11, 22)
        assert (a.switches_added, a.terminals_added) == (33, 44)

    def test_fraction(self):
        assert RewiringReport(links_removed=5).rewired_fraction(100) == 0.05
        with pytest.raises(ValueError):
            RewiringReport().rewired_fraction(0)


class TestExpandRFC:
    def test_minimal_step_growth(self, rfc_medium):
        expanded, report = expand_rfc(rfc_medium, steps=1, rng=1)
        levels = rfc_medium.num_levels
        # Two switches per non-root level, one root, R terminals.
        assert report.switches_added == 2 * (levels - 1) + 1
        assert report.terminals_added == rfc_medium.radix
        assert expanded.num_leaves == rfc_medium.num_leaves + 2
        assert (
            expanded.num_terminals
            == rfc_medium.num_terminals + rfc_medium.radix
        )

    def test_stays_radix_regular(self, rfc_medium):
        expanded, _ = expand_rfc(rfc_medium, steps=3, rng=2)
        assert expanded.is_radix_regular()
        expanded.validate()

    def test_wire_conservation(self, rfc_medium):
        expanded, report = expand_rfc(rfc_medium, steps=2, rng=3)
        # Every broken link adds two; direct new-new links add one.
        assert (
            expanded.num_links
            == rfc_medium.num_links
            + report.links_added
            - report.links_removed
        )

    def test_usually_stays_routable_below_limit(self, rfc_medium):
        # 32 leaves with radix 8 is comfortably below the limit of 52,
        # so a couple of expansion steps should preserve routability.
        expanded, _ = expand_rfc(rfc_medium, steps=2, rng=4)
        assert has_updown_routing_of(expanded)

    def test_deterministic(self, rfc_medium):
        a, _ = expand_rfc(rfc_medium, steps=1, rng=9)
        b, _ = expand_rfc(rfc_medium, steps=1, rng=9)
        assert a.links() == b.links()

    def test_rejects_zero_steps(self, rfc_medium):
        with pytest.raises(ExpansionError):
            expand_rfc(rfc_medium, steps=0)


class TestWeakExpandRFC:
    def test_adds_level(self, rfc_medium):
        expanded, report = weak_expand_rfc(rfc_medium, rng=1)
        assert expanded.num_levels == rfc_medium.num_levels + 1
        assert expanded.is_radix_regular()
        assert expanded.num_terminals == rfc_medium.num_terminals
        assert report.switches_added == rfc_medium.num_leaves

    def test_restores_routability_headroom(self, rfc_medium):
        expanded, _ = weak_expand_rfc(rfc_medium, rng=2)
        assert has_updown_routing_of(expanded)
        assert rfc_max_leaves(
            expanded.radix, expanded.num_levels
        ) > rfc_max_leaves(rfc_medium.radix, rfc_medium.num_levels)


class TestExpandRRN:
    def test_growth_and_regularity(self):
        net = random_regular_network(16, 4, 2, rng=5)
        bigger, report = expand_rrn(net, new_switches=4, rng=6)
        assert bigger.num_switches == 20
        assert report.switches_added == 4
        assert report.terminals_added == 8
        assert all(bigger.degree(s) == 4 for s in range(20))

    def test_odd_degree_pairs_spares(self):
        net = random_regular_network(12, 5, 1, rng=7)
        bigger, _ = expand_rrn(net, new_switches=2, rng=8)
        assert all(bigger.degree(s) == 5 for s in range(14))

    def test_rewiring_counts(self):
        net = random_regular_network(16, 4, 2, rng=9)
        _, report = expand_rrn(net, new_switches=1, rng=10)
        assert report.links_removed == 2  # degree/2 breaks
        assert report.links_added == 4

    def test_rejects_tiny(self):
        net = random_regular_network(4, 2, 1, rng=0)
        with pytest.raises(ExpansionError):
            expand_rrn(net, new_switches=0)


class TestStrongExpansionLimit:
    def test_matches_theory(self):
        assert strong_expansion_limit(36, 3) == rfc_max_leaves(36, 3)

    def test_paper_value(self):
        assert strong_expansion_limit(36, 3) == 11_254
