"""Property and golden-vector tests for the counter-based RNG.

The relaxed engine's randomness (:mod:`repro.accel.rng`) is a pure
function of ``(seed, packet_id, cycle, draw_site)``, so the generator
itself can be tested directly, independent of any simulation:

* **uniformity** -- ``randbelow(n)`` hits every residue with frequency
  close to ``1/n`` over a keyed scan, and ``uniform01`` has the right
  mean/extremes;
* **stream independence** -- draws under different packet ids (or
  counter keys) decorrelate: flipping any single component of the key
  changes the output, and bitwise correlation between neighboring
  streams stays at noise level;
* **scalar/vector parity** -- the Python-int and ``np.uint64`` forms
  are bit-for-bit identical (Hypothesis-driven plus golden vectors in
  ``tests/data/counter_rng_golden.json``, which also pin the values
  across platforms and numpy versions).

Regenerating the golden file is a breaking change to the relaxed
engine's outputs and must be called out as such.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.accel.rng import (
    GOLDEN_GAMMA,
    SITE_BITS,
    SITE_TRAFFIC,
    KeyedStream,
    counter_key,
    draw64,
    draw64_array,
    key_seed,
    mix64,
    mix64_array,
    randbelow,
    uniform01,
    uniform01_array,
)

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "counter_rng_golden.json"

u64 = st.integers(min_value=0, max_value=2**64 - 1)
small_n = st.integers(min_value=1, max_value=64)


# ---------------------------------------------------------------------------
# golden vectors: cross-platform stability of (seed, counter) -> value
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as f:
        return json.load(f)


def test_golden_mix64(golden):
    for x_str, expect in golden["mix64"].items():
        assert mix64(int(x_str)) == expect


def test_golden_draws(golden):
    for case in golden["draws"]:
        hseed = key_seed(case["seed"])
        assert hseed == case["hseed"]
        ckey = counter_key(case["cycle"], case["site"])
        assert draw64(hseed, case["packet_id"], ckey) == case["draw64"]
        assert (
            randbelow(hseed, case["packet_id"], ckey, 7)
            == case["randbelow_7"]
        )
        assert uniform01(hseed, case["packet_id"], ckey) == pytest.approx(
            case["uniform01"], abs=0.0
        )


def test_golden_draws_vectorized(golden):
    """The vectorized path reproduces every golden scalar draw."""
    cases = golden["draws"]
    for case in cases:
        hseed = key_seed(case["seed"])
        ckey = counter_key(case["cycle"], case["site"])
        pkt = np.array([case["packet_id"]], dtype=np.uint64)
        assert int(draw64_array(hseed, pkt, ckey)[0]) == case["draw64"]


def test_golden_keyed_stream(golden):
    g = golden["keyed_stream"]
    hseed = key_seed(g["seed"])
    ckey = counter_key(g["cycle"], g["site"])

    ks = KeyedStream(hseed, g["packet_id"], ckey)
    assert [ks.randrange(100) for _ in range(8)] == g["walk_randrange_100"]

    ks = KeyedStream(hseed, g["packet_id"], ckey)
    assert [ks.random() for _ in range(4)] == g["walk_random"]

    ks = KeyedStream(hseed, g["packet_id"], ckey)
    seq = list(range(10))
    ks.shuffle(seq)
    assert seq == g["shuffle_10"]


# ---------------------------------------------------------------------------
# scalar / vector bit-equality
# ---------------------------------------------------------------------------


@given(u64)
def test_mix64_scalar_vector_parity(x):
    assert mix64(x) == int(mix64_array(np.array([x], dtype=np.uint64))[0])


@given(st.integers(min_value=0, max_value=2**63), u64, u64)
def test_draw64_scalar_vector_parity(seed, packet_id, ckey):
    hseed = key_seed(seed)
    scalar = draw64(hseed, packet_id, ckey)
    vec = draw64_array(
        hseed, np.array([packet_id], dtype=np.uint64), ckey
    )
    assert scalar == int(vec[0])


@given(u64, st.lists(u64, min_size=1, max_size=32))
def test_draw64_batch_matches_scalar_loop(ckey, packet_ids):
    hseed = key_seed(99)
    vec = draw64_array(hseed, np.array(packet_ids, dtype=np.uint64), ckey)
    assert [draw64(hseed, p, ckey) for p in packet_ids] == [
        int(v) for v in vec
    ]


@given(u64, u64)
def test_uniform01_scalar_vector_parity(packet_id, ckey):
    hseed = key_seed(1)
    vec = uniform01_array(
        hseed, np.array([packet_id], dtype=np.uint64), ckey
    )
    assert uniform01(hseed, packet_id, ckey) == float(vec[0])


def test_draw64_array_broadcasts_ckey_lanes():
    """Per-lane counter keys match per-lane scalar evaluation."""
    hseed = key_seed(5)
    pkts = np.arange(16, dtype=np.uint64)
    ckeys = np.array(
        [counter_key(c, c % (1 << SITE_BITS)) for c in range(16)],
        dtype=np.uint64,
    )
    vec = draw64_array(hseed, pkts, ckeys)
    for i in range(16):
        assert int(vec[i]) == draw64(hseed, i, int(ckeys[i]))


# ---------------------------------------------------------------------------
# uniformity
# ---------------------------------------------------------------------------


@given(small_n)
def test_randbelow_bounds(n):
    hseed = key_seed(3)
    for pkt in range(8):
        v = randbelow(hseed, pkt, counter_key(pkt, 0), n)
        assert 0 <= v < n


@pytest.mark.parametrize("n", [2, 3, 5, 7, 8, 13])
def test_randbelow_frequency_uniform(n):
    """Residue frequencies over a keyed scan stay near 1/n.

    20k draws per bound: a 4-sigma binomial band gives a deterministic
    test (the scan is a fixed function of the pinned seed) with
    comfortable margin over the modulo bias (< n / 2**64).
    """
    draws = 20_000
    hseed = key_seed(17)
    vals = draw64_array(
        hseed, np.arange(draws, dtype=np.uint64), counter_key(0, 0)
    ) % np.uint64(n)
    counts = np.bincount(vals.astype(np.int64), minlength=n)
    p = 1.0 / n
    sigma = (draws * p * (1 - p)) ** 0.5
    assert np.all(np.abs(counts - draws * p) < 4.0 * sigma), counts


def test_uniform01_range_and_mean():
    hseed = key_seed(23)
    vals = uniform01_array(
        hseed, np.arange(50_000, dtype=np.uint64), counter_key(1, 2)
    )
    assert vals.min() >= 0.0 and vals.max() < 1.0
    # mean of U(0,1) over 50k iid draws: sigma = 1/sqrt(12*50000)
    assert abs(vals.mean() - 0.5) < 4.0 / (12 * 50_000) ** 0.5
    # spread should cover the unit interval densely
    assert vals.min() < 1e-3 and vals.max() > 1 - 1e-3


def test_bit_balance():
    """Every one of the 64 output bits is ~50/50 over a keyed scan."""
    draws = 20_000
    hseed = key_seed(29)
    vals = draw64_array(
        hseed, np.arange(draws, dtype=np.uint64), counter_key(3, 1)
    )
    for bit in range(64):
        ones = int(((vals >> np.uint64(bit)) & np.uint64(1)).sum())
        assert abs(ones - draws / 2) < 4.0 * (draws * 0.25) ** 0.5, bit


# ---------------------------------------------------------------------------
# stream independence
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=2**62),
    st.integers(min_value=0, max_value=2**62),
    u64,
)
def test_distinct_packets_distinct_draws(pkt_a, pkt_b, ckey):
    """Different packet ids virtually never collide on a draw."""
    if pkt_a == pkt_b:
        return
    hseed = key_seed(31)
    assert draw64(hseed, pkt_a, ckey) != draw64(hseed, pkt_b, ckey)


@given(st.integers(min_value=0, max_value=2**40), st.data())
def test_distinct_sites_distinct_draws(cycle, data):
    """The same packet's draws at two sites in one cycle differ."""
    site_a = data.draw(st.integers(0, (1 << SITE_BITS) - 1))
    site_b = data.draw(st.integers(0, (1 << SITE_BITS) - 1))
    if site_a == site_b:
        return
    hseed = key_seed(37)
    assert draw64(hseed, 11, counter_key(cycle, site_a)) != draw64(
        hseed, 11, counter_key(cycle, site_b)
    )


@given(st.integers(min_value=0, max_value=2**62))
def test_distinct_seeds_distinct_draws(seed):
    hseed_a = key_seed(seed)
    hseed_b = key_seed(seed + 1)
    assert hseed_a != hseed_b
    assert draw64(hseed_a, 0, 0) != draw64(hseed_b, 0, 0)


def test_neighbor_stream_bit_correlation():
    """Streams of adjacent packet ids decorrelate to noise level.

    XOR of neighboring streams should look uniform: each of the 64 bits
    of ``draw(p) ^ draw(p+1)`` is ~50/50 over a keyed scan.  A counter
    RNG with lane leakage (e.g. a missing finalizer round) fails this
    immediately.
    """
    draws = 20_000
    hseed = key_seed(41)
    pkts = np.arange(draws, dtype=np.uint64)
    a = draw64_array(hseed, pkts, counter_key(0, 0))
    b = draw64_array(hseed, pkts + np.uint64(1), counter_key(0, 0))
    x = a ^ b
    for bit in range(64):
        ones = int(((x >> np.uint64(bit)) & np.uint64(1)).sum())
        assert abs(ones - draws / 2) < 4.5 * (draws * 0.25) ** 0.5, bit


def test_cycle_advance_decorrelates():
    """The same packet's draw decorrelates across consecutive cycles."""
    draws = 20_000
    hseed = key_seed(43)
    pkts = np.arange(draws, dtype=np.uint64)
    a = draw64_array(hseed, pkts, counter_key(100, 0))
    b = draw64_array(hseed, pkts, counter_key(101, 0))
    x = a ^ b
    for bit in range(64):
        ones = int(((x >> np.uint64(bit)) & np.uint64(1)).sum())
        assert abs(ones - draws / 2) < 4.5 * (draws * 0.25) ** 0.5, bit


# ---------------------------------------------------------------------------
# KeyedStream behaviour
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**62), small_n)
def test_keyed_stream_randrange_bounds(pkt, n):
    ks = KeyedStream(key_seed(47), pkt, counter_key(0, SITE_TRAFFIC))
    for _ in range(8):
        assert 0 <= ks.randrange(n) < n


@given(st.integers(min_value=-50, max_value=50), st.integers(1, 100))
def test_keyed_stream_randint_inclusive(a, width):
    b = a + width
    ks = KeyedStream(key_seed(53), 0, counter_key(0, SITE_TRAFFIC))
    for _ in range(8):
        assert a <= ks.randint(a, b) <= b


def test_keyed_stream_is_pure_function_of_key():
    key = (key_seed(59), 7, counter_key(9, SITE_TRAFFIC))
    walk_a = [KeyedStream(*key).random() for _ in range(1)]
    ks = KeyedStream(*key)
    walk_b = [ks.random()]
    assert walk_a == walk_b
    # distinct keys give distinct walks
    other = KeyedStream(key_seed(59), 8, counter_key(9, SITE_TRAFFIC))
    assert other.random() != walk_b[0]


def test_keyed_stream_shuffle_is_permutation():
    ks = KeyedStream(key_seed(61), 1, counter_key(2, SITE_TRAFFIC))
    seq = list(range(25))
    ks.shuffle(seq)
    assert sorted(seq) == list(range(25))
    assert seq != list(range(25))  # pinned key; a fixed point is absurd


def test_keyed_stream_getrandbits_bounds():
    ks = KeyedStream(key_seed(67), 2, counter_key(1, SITE_TRAFFIC))
    for k in (1, 8, 16, 32, 53, 64):
        v = ks.getrandbits(k)
        assert 0 <= v < (1 << k)


def test_golden_gamma_is_odd():
    """SplitMix64's Weyl increment must be odd to be full-period."""
    assert GOLDEN_GAMMA % 2 == 1
