"""Cross-module integration tests: generate -> analyze -> route ->
simulate pipelines behaving consistently."""

import random

import pytest

from repro.core.ancestors import has_updown_routing_of, stages_of
from repro.core.expansion import expand_rfc
from repro.core.rfc import rfc_with_updown
from repro.core.theory import rfc_max_leaves, x_for_radix
from repro.faults.updown_survival import pruned_stages
from repro.graphs.metrics import leaf_diameter
from repro.routing.updown import UpDownRouter
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator, simulate
from repro.simulation.flowlevel import flow_level_throughput
from repro.simulation.traffic import make_traffic
from repro.topologies.fattree import commodity_fat_tree

FAST = SimulationParams(measure_cycles=500, warmup_cycles=150, seed=0)


class TestGenerateRouteSimulate:
    def test_full_pipeline(self):
        topo, attempts = rfc_with_updown(8, 24, 3, rng=5)
        assert attempts >= 1
        # Routing agrees with ancestor analysis for every pair.
        router = UpDownRouter.for_topology(topo)
        n1 = topo.num_leaves
        for a in range(0, n1, 5):
            for b in range(0, n1, 7):
                assert router.reachable(a, b)
        # And the network carries traffic.
        traffic = make_traffic("uniform", topo.num_terminals, rng=1)
        result = simulate(topo, traffic, 0.3, FAST)
        assert result.accepted_load == pytest.approx(0.3, abs=0.06)

    def test_diameter_bound_holds_at_capacity(self):
        radix, levels = 10, 2
        n1 = rfc_max_leaves(radix, levels)
        topo, _ = rfc_with_updown(radix, n1, levels, rng=2, max_attempts=128)
        leaves = [topo.switch_id(0, i) for i in range(n1)]
        assert leaf_diameter(topo.adjacency(), leaves) <= 2 * (levels - 1)


class TestExpansionPipeline:
    def test_expand_then_route_and_simulate(self):
        topo, _ = rfc_with_updown(8, 24, 3, rng=6)
        expanded, report = expand_rfc(topo, steps=3, rng=7)
        assert report.terminals_added == 24
        assert has_updown_routing_of(expanded)
        traffic = make_traffic("uniform", expanded.num_terminals, rng=2)
        result = simulate(expanded, traffic, 0.3, FAST)
        assert result.measured_packets > 0

    def test_expansion_past_cap_loses_routability_eventually(self):
        """Strong expansion works until the Theorem 4.2 cap (52 leaves
        for radix 8, 3 levels); far beyond it routability must die."""
        topo, _ = rfc_with_updown(8, 48, 3, rng=8)
        cap = rfc_max_leaves(8, 3)
        # Expand well past the cap: 48 -> 80 leaves.
        expanded, _ = expand_rfc(topo, steps=16, rng=9)
        assert expanded.num_leaves > cap
        assert x_for_radix(8, expanded.num_leaves, 3) < 0
        assert not has_updown_routing_of(expanded)


class TestEngineVsFlowLevel:
    def test_saturation_agreement(self, cft_8_3):
        """The two performance models agree on magnitude and ranking."""
        engine = {}
        flow = {}
        for name in ("uniform", "random-pairing"):
            traffic = make_traffic(name, cft_8_3.num_terminals, rng=3)
            engine[name] = simulate(
                cft_8_3, traffic, 1.0, FAST
            ).accepted_load
            flow[name] = flow_level_throughput(
                cft_8_3, name, flows_per_terminal=4, rng=3
            )
        for name in engine:
            assert abs(engine[name] - flow[name]) < 0.3
        assert (engine["uniform"] >= engine["random-pairing"] - 0.05) == (
            flow["uniform"] >= flow["random-pairing"] - 0.05
        )


class TestFaultConsistency:
    def test_engine_honours_pruned_routability(self):
        """If ancestor analysis says the pruned net is still routable,
        the engine must deliver everything (no unroutable drops)."""
        topo, _ = rfc_with_updown(8, 24, 3, rng=10)
        order = topo.links()
        random.Random(4).shuffle(order)
        removed = order[:6]
        from repro.core.ancestors import has_updown_routing

        routable = has_updown_routing(
            topo.level_sizes, pruned_stages(topo, set(removed))
        )
        traffic = make_traffic("uniform", topo.num_terminals, rng=5)
        sim = Simulator(topo, traffic, 0.4, FAST, removed_links=removed)
        sim.run()
        if routable:
            assert sim.unroutable_packets == 0
        else:
            assert sim.unroutable_packets >= 0  # dropped, not crashed

    def test_cft_vs_rfc_same_radix_same_size(self):
        """Equal-resource comparison is apples-to-apples."""
        cft = commodity_fat_tree(8, 3)
        rfc, _ = rfc_with_updown(8, cft.num_leaves, 3, rng=11)
        assert cft.num_terminals == rfc.num_terminals
        assert cft.num_links == rfc.num_links
        assert cft.num_switches == rfc.num_switches


class TestStagesRoundTrip:
    def test_stages_of_reconstructs_router(self, rfc_medium):
        stages = stages_of(rfc_medium)
        direct = UpDownRouter.for_topology(rfc_medium)
        rebuilt = UpDownRouter(rfc_medium.level_sizes, stages)
        for a in range(0, rfc_medium.num_leaves, 7):
            for b in range(0, rfc_medium.num_leaves, 5):
                assert direct.path_length(a, b) == rebuilt.path_length(a, b)
