"""The RPR10x project passes: engine-parity drift (including the
seeded-mutation regression against the real tree), dtype/width
hazards, cache-key taint and observer non-perturbation."""

import shutil
import textwrap
from pathlib import Path

import repro
from repro.lint.checkers.rpr102_dtype_width import DtypeWidthChecker
from repro.lint.runner import lint_source, run_analysis

SRC_PACKAGE = Path(repro.__file__).resolve().parent


def _codes(findings):
    return [f.code for f in findings]


def _write(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


class TestEngineParityMutation:
    """A field added to SimulationParams and consumed by only two of
    the three engines must be caught -- the exact drift RPR101 exists
    for, seeded into a copy of the real tree."""

    def _mutated_tree(self, tmp_path):
        tree = tmp_path / "repro"
        shutil.copytree(
            SRC_PACKAGE, tree,
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        config = tree / "simulation" / "config.py"
        config.write_text(
            config.read_text().replace(
                "    seed: int = 0",
                "    seed: int = 0",
                1,
            ).replace(
                "    valiant: bool = False",
                "    valiant: bool = False\n    mutation_knob: int = 0",
                1,
            )
        )
        fastpath = tree / "simulation" / "fastpath.py"
        source = fastpath.read_text()
        marker = "def run_fast("
        head, _, rest = source.partition(marker)
        body_start = rest.index("\n") + 1
        # First statement of run_fast reads the new knob; the reference
        # engine reaches it through its lazy run_fast dispatch, the
        # vectorized engine never does.
        fastpath.write_text(
            head + marker + rest[:body_start]
            + "    _mutation = params.mutation_knob\n"
            + rest[body_start:]
        )
        return tree

    def test_mutation_is_caught(self, tmp_path):
        tree = self._mutated_tree(tmp_path)
        report = run_analysis([tree])
        hits = [
            f for f in report.findings
            if f.code == "RPR101" and "mutation_knob" in f.message
        ]
        assert len(hits) == 1
        (hit,) = hits
        assert "accel.sim" in hit.message
        assert "simulation.fastpath" not in hit.message.split("never read")[1]
        assert hit.file.endswith("config.py")
        assert not report.internal_errors

    def test_unmutated_copy_is_clean(self, tmp_path):
        tree = tmp_path / "repro"
        shutil.copytree(
            SRC_PACKAGE, tree,
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        report = run_analysis([tree])
        assert _codes(report.findings) == []
        assert not report.internal_errors


class TestCachePolicy:
    FILES = {
        "proj/__init__.py": "",
        "proj/simulation/__init__.py": "",
        "proj/simulation/config.py": """\
            from dataclasses import dataclass

            CACHE_KEY_EXCLUDED_FIELDS = frozenset({"fast_path"})

            @dataclass(frozen=True)
            class SimulationParams:
                cycles: int = 10
                fast_path: bool = True
            """,
        "proj/simulation/engine.py": """\
            def run(params):
                return params.cycles + int(params.fast_path)
            """,
        "proj/simulation/fastpath.py": """\
            def run_fast(params):
                return params.cycles + int(params.fast_path)
            """,
        "proj/accel/__init__.py": "",
        "proj/accel/sim.py": """\
            def run_vectorized(params):
                return params.cycles + int(params.fast_path)
            """,
        "proj/exec/__init__.py": "",
        "proj/exec/cache.py": """\
            import dataclasses

            def cache_key(params):
                payload = dataclasses.asdict(params)
                payload.pop("fast_path", None)
                return sorted(payload.items())
            """,
    }

    def test_declared_policy_is_clean(self, tmp_path):
        _write(tmp_path, self.FILES)
        report = run_analysis([tmp_path])
        assert _codes(report.findings) == []

    def test_missing_declaration_fires(self, tmp_path):
        files = dict(self.FILES)
        files["proj/simulation/config.py"] = files[
            "proj/simulation/config.py"
        ].replace(
            'CACHE_KEY_EXCLUDED_FIELDS = frozenset({"fast_path"})\n', ""
        )
        _write(tmp_path, files)
        report = run_analysis([tmp_path])
        assert "RPR101" in _codes(report.findings)
        (finding,) = report.findings
        assert "CACHE_KEY_EXCLUDED_FIELDS" in finding.message

    def test_undeclared_pop_fires_at_pop_site(self, tmp_path):
        files = dict(self.FILES)
        files["proj/exec/cache.py"] = textwrap.dedent(
            files["proj/exec/cache.py"]
        ).replace(
            'payload.pop("fast_path", None)',
            'payload.pop("fast_path", None)\n'
            '    payload.pop("cycles", None)',
        )
        _write(tmp_path, files)
        report = run_analysis([tmp_path])
        hits = [f for f in report.findings if f.code == "RPR101"]
        assert len(hits) == 1
        assert "cycles" in hits[0].message
        assert hits[0].file.endswith("cache.py")

    def test_stale_exclusion_fires(self, tmp_path):
        files = dict(self.FILES)
        files["proj/simulation/config.py"] = files[
            "proj/simulation/config.py"
        ].replace('{"fast_path"}', '{"fast_path", "ghost_field"}')
        _write(tmp_path, files)
        report = run_analysis([tmp_path])
        hits = [f for f in report.findings if f.code == "RPR101"]
        assert len(hits) == 1
        assert "ghost_field" in hits[0].message


class TestRelaxedRngPolicy:
    """RPR105: ``rng_mode`` must stay in the cache key.  A tree where
    the relaxed mode exists and the key serializes params wholesale
    (with only exact-engine knobs excluded) is the blessed shape."""

    FILES = {
        "proj/__init__.py": "",
        "proj/simulation/__init__.py": "",
        "proj/simulation/config.py": """\
            from dataclasses import dataclass

            CACHE_KEY_EXCLUDED_FIELDS = frozenset({"fast_path"})

            @dataclass(frozen=True)
            class SimulationParams:
                cycles: int = 10
                fast_path: bool = True
                rng_mode: str = "exact"
            """,
        "proj/simulation/engine.py": """\
            def run(params):
                return params.cycles + int(params.fast_path) + len(params.rng_mode)
            """,
        "proj/simulation/fastpath.py": """\
            def run_fast(params):
                return params.cycles + int(params.fast_path) + len(params.rng_mode)
            """,
        "proj/accel/__init__.py": "",
        "proj/accel/sim.py": """\
            def run_vectorized(params):
                return params.cycles + int(params.fast_path) + len(params.rng_mode)
            """,
        "proj/exec/__init__.py": "",
        "proj/exec/cache.py": """\
            import dataclasses

            def cache_key(params):
                payload = dataclasses.asdict(params)
                payload.pop("fast_path", None)
                return sorted(payload.items())
            """,
    }

    def _rpr105(self, report):
        return [f for f in report.findings if f.code == "RPR105"]

    def test_mode_in_key_is_clean(self, tmp_path):
        _write(tmp_path, self.FILES)
        report = run_analysis([tmp_path])
        assert _codes(report.findings) == []

    def test_declared_exclusion_fires(self, tmp_path):
        files = dict(self.FILES)
        files["proj/simulation/config.py"] = files[
            "proj/simulation/config.py"
        ].replace('{"fast_path"}', '{"fast_path", "rng_mode"}')
        # Match the declaration in the cache layer so RPR101 stays
        # quiet: a *consistent* exclusion of the mode is exactly the
        # policy bug RPR105 exists to reject.
        files["proj/exec/cache.py"] = textwrap.dedent(
            files["proj/exec/cache.py"]
        ).replace(
            'payload.pop("fast_path", None)',
            'payload.pop("fast_path", None)\n'
            '    payload.pop("rng_mode", None)',
        )
        _write(tmp_path, files)
        report = run_analysis([tmp_path])
        assert "RPR101" not in _codes(report.findings)
        hits = self._rpr105(report)
        assert len(hits) == 2  # declaration + pop site
        by_file = sorted(h.file.rsplit("/", 1)[-1] for h in hits)
        assert by_file == ["cache.py", "config.py"]
        messages = " ".join(h.message for h in hits)
        assert "rng_mode" in messages
        assert "statistically" in messages

    def test_undeclared_pop_fires(self, tmp_path):
        files = dict(self.FILES)
        files["proj/exec/cache.py"] = textwrap.dedent(
            files["proj/exec/cache.py"]
        ).replace(
            'payload.pop("fast_path", None)',
            'payload.pop("fast_path", None)\n'
            '    payload.pop("rng_mode", None)',
        )
        _write(tmp_path, files)
        report = run_analysis([tmp_path])
        hits = self._rpr105(report)
        assert len(hits) == 1
        assert hits[0].file.endswith("cache.py")
        assert "never be popped" in hits[0].message
        # RPR101 also flags the pop as undeclared: one defect, both
        # the consistency and the policy angle reported.
        assert "RPR101" in _codes(report.findings)

    def test_handrolled_key_omitting_mode_fires(self, tmp_path):
        files = dict(self.FILES)
        files["proj/exec/cache.py"] = """\
            def cache_key(params):
                return (params.cycles, params.fast_path)
            """
        _write(tmp_path, files)
        report = run_analysis([tmp_path])
        hits = self._rpr105(report)
        assert len(hits) == 1
        assert hits[0].file.endswith("cache.py")
        assert "without recording 'rng_mode'" in hits[0].message
        assert "cycles" in hits[0].message

    def test_handrolled_key_reading_mode_is_clean(self, tmp_path):
        files = dict(self.FILES)
        files["proj/exec/cache.py"] = """\
            def cache_key(params):
                return (params.cycles, params.fast_path, params.rng_mode)
            """
        _write(tmp_path, files)
        report = run_analysis([tmp_path])
        assert self._rpr105(report) == []

    def test_tree_without_rng_mode_is_silent(self, tmp_path):
        """Pre-relaxed checkouts must not be retrofitted with findings
        even when they exclude engine knobs and hand-roll keys."""
        files = dict(self.FILES)
        files["proj/simulation/config.py"] = files[
            "proj/simulation/config.py"
        ].replace('    rng_mode: str = "exact"\n', "")
        for mod in ("engine", "fastpath"):
            files[f"proj/simulation/{mod}.py"] = files[
                f"proj/simulation/{mod}.py"
            ].replace(" + len(params.rng_mode)", "")
        files["proj/accel/sim.py"] = files["proj/accel/sim.py"].replace(
            " + len(params.rng_mode)", ""
        )
        _write(tmp_path, files)
        report = run_analysis([tmp_path])
        assert self._rpr105(report) == []


class TestDtypeWidth:
    def _findings(self, source):
        return lint_source(
            textwrap.dedent(source), "kernel.py",
            checkers=[DtypeWidthChecker()],
        )

    def test_int32_store_of_len(self):
        findings = self._findings(
            """\
            import numpy as np

            def build(n, values):
                offsets = np.zeros(n + 1, dtype=np.int32)
                offsets[n] = len(values)
                return offsets
            """
        )
        assert _codes(findings) == ["RPR102"]
        assert "unbounded Python count" in findings[0].message

    def test_int64_store_is_clean(self):
        findings = self._findings(
            """\
            import numpy as np

            def build(n, values):
                offsets = np.zeros(n + 1, dtype=np.int64)
                offsets[n] = len(values)
                return offsets
            """
        )
        assert findings == []

    def test_int32_product_overflow(self):
        findings = self._findings(
            """\
            import numpy as np

            def keys(sources, dests):
                src = np.asarray(sources, dtype=np.int32)
                dst = np.asarray(dests, dtype=np.int32)
                return src * dst
            """
        )
        assert _codes(findings) == ["RPR102"]
        assert "wraps silently" in findings[0].message

    def test_widened_product_is_clean(self):
        findings = self._findings(
            """\
            import numpy as np

            def keys(sources, dests):
                src = np.asarray(sources, dtype=np.int32)
                dst = np.asarray(dests, dtype=np.int32)
                return src.astype(np.int64) * dst.astype(np.int64)
            """
        )
        assert findings == []

    def test_uint64_signed_mix(self):
        findings = self._findings(
            """\
            import numpy as np

            def mask(words, bits):
                w = np.zeros(4, dtype=np.uint64)
                b = np.zeros(4, dtype=np.int64)
                return w & b
            """
        )
        assert _codes(findings) == ["RPR102"]
        assert "uint64" in findings[0].message

    def test_uint64_uint64_is_clean(self):
        findings = self._findings(
            """\
            import numpy as np

            def mask(idx):
                w = np.zeros(4, dtype=np.uint64)
                return w | np.uint64(1)
            """
        )
        assert findings == []

    def test_truncating_cast_of_product(self):
        findings = self._findings(
            """\
            import numpy as np

            def flatten(rows, cols):
                return (rows * cols).astype(np.int32)
            """
        )
        assert _codes(findings) == ["RPR102"]
        assert "truncates" in findings[0].message

    def test_int32_cumsum(self):
        findings = self._findings(
            """\
            import numpy as np

            def offsets(degrees):
                d = np.asarray(degrees, dtype=np.int32)
                return np.cumsum(d)
            """
        )
        assert _codes(findings) == ["RPR102"]
        assert "cumsum" in findings[0].message

    def test_dtype_survives_repeat_and_diff(self):
        findings = self._findings(
            """\
            import numpy as np

            def positions(offsets, lengths):
                off = np.asarray(offsets, dtype=np.int32)
                starts = np.repeat(off[:-1], np.diff(off))
                return starts * starts
            """
        )
        assert _codes(findings) == ["RPR102"]
        assert "wraps silently" in findings[0].message

    def test_dtype_survives_sort_and_unique(self):
        findings = self._findings(
            """\
            import numpy as np

            def keys(raw):
                k = np.sort(np.asarray(raw, dtype=np.int64))
                u = np.unique(k)
                return u * u
            """
        )
        assert findings == []

    def test_ascontiguousarray_is_a_constructor(self):
        findings = self._findings(
            """\
            import numpy as np

            def pack(values):
                flat = np.ascontiguousarray(values, dtype=np.int32)
                return flat * flat
            """
        )
        assert _codes(findings) == ["RPR102"]

    def test_cumsum_with_wide_dtype_is_clean(self):
        findings = self._findings(
            """\
            import numpy as np

            def offsets(degrees):
                d = np.asarray(degrees, dtype=np.int32)
                return np.cumsum(d, dtype=np.int64)
            """
        )
        assert findings == []

    def test_non_numpy_file_is_skipped(self):
        findings = self._findings(
            """\
            def build(n, values):
                offsets = [0] * (n + 1)
                offsets[n] = len(values)
                return offsets
            """
        )
        assert findings == []


class TestCacheKeyTaint:
    FILES = {
        "proj/__init__.py": "",
        "proj/exec/__init__.py": "",
        "proj/exec/cache.py": """\
            from ..util import salt

            def cache_key(payload):
                return salt(repr(payload))
            """,
        "proj/util.py": """\
            import os

            def salt(text):
                return (os.getenv("SALT") or "") + text
            """,
    }

    def test_transitive_env_read_fires(self, tmp_path):
        _write(tmp_path, self.FILES)
        report = run_analysis([tmp_path])
        hits = [f for f in report.findings if f.code == "RPR103"]
        assert len(hits) == 1
        (hit,) = hits
        assert hit.file.endswith("util.py")
        assert "os.getenv" in hit.message
        assert "cache_key()" in hit.message
        assert "salt()" in hit.message

    def test_direct_wallclock_left_to_rpr004(self, tmp_path):
        _write(tmp_path, {
            "proj/__init__.py": "",
            "proj/exec/__init__.py": "",
            "proj/exec/cache.py": """\
                import time

                def cache_key(payload):
                    return f"{time.time()}-{payload}"
                """,
        })
        report = run_analysis([tmp_path])
        codes = _codes(report.findings)
        assert "RPR004" in codes
        assert "RPR103" not in codes

    def test_pure_key_path_is_clean(self, tmp_path):
        _write(tmp_path, {
            "proj/__init__.py": "",
            "proj/exec/__init__.py": "",
            "proj/exec/cache.py": """\
                import hashlib

                def cache_key(payload):
                    digest = hashlib.sha256(payload.encode())
                    return digest.hexdigest()
                """,
        })
        report = run_analysis([tmp_path])
        assert _codes(report.findings) == []


class TestObserverWrites:
    def test_hook_writing_parameter_fires(self, tmp_path):
        _write(tmp_path, {
            "proj/__init__.py": "",
            "proj/obs/__init__.py": "",
            "proj/obs/hooks.py": """\
                class Meddler:
                    def on_inject(self, sim, packet):
                        sim.queue.append(packet)

                    def on_drop(self, sim, packet):
                        sim.drops = sim.drops + 1
                """,
        })
        report = run_analysis([tmp_path])
        hits = [f for f in report.findings if f.code == "RPR104"]
        assert len(hits) == 2
        assert all(h.file.endswith("hooks.py") for h in hits)
        messages = " ".join(h.message for h in hits)
        assert "append" in messages
        assert "sim.drops" in messages

    def test_self_accumulation_is_clean(self, tmp_path):
        _write(tmp_path, {
            "proj/__init__.py": "",
            "proj/obs/__init__.py": "",
            "proj/obs/hooks.py": """\
                class Metrics:
                    def __init__(self):
                        self.count = 0
                        self.events = []

                    def on_inject(self, sim, packet):
                        self.count += 1
                        self.events.append(packet.id)
                """,
        })
        report = run_analysis([tmp_path])
        assert _codes(report.findings) == []

    def test_transitive_write_via_helper_fires_with_chain(self, tmp_path):
        _write(tmp_path, {
            "proj/__init__.py": "",
            "proj/obs/__init__.py": "",
            "proj/obs/hooks.py": """\
                from ..fixup import drain

                class Tracer:
                    def on_eject(self, sim, packet):
                        drain(sim)
                """,
            "proj/fixup.py": """\
                def drain(sim):
                    sim.pending.clear()
                """,
        })
        report = run_analysis([tmp_path])
        hits = [f for f in report.findings if f.code == "RPR104"]
        assert len(hits) == 1
        (hit,) = hits
        assert hit.file.endswith("fixup.py")
        assert "on_eject()" in hit.message
        assert "drain()" in hit.message

    def test_rng_draw_off_parameter_fires(self, tmp_path):
        _write(tmp_path, {
            "proj/__init__.py": "",
            "proj/obs/__init__.py": "",
            "proj/obs/hooks.py": """\
                class Sampler:
                    def on_hop(self, sim, packet):
                        return sim.rng.random() < 0.5
                """,
        })
        report = run_analysis([tmp_path])
        hits = [f for f in report.findings if f.code == "RPR104"]
        assert len(hits) == 1
        assert "rng" in hits[0].message

    def test_project_finding_respects_waiver(self, tmp_path):
        _write(tmp_path, {
            "proj/__init__.py": "",
            "proj/obs/__init__.py": "",
            "proj/obs/hooks.py": """\
                class Meddler:
                    def on_inject(self, sim, packet):
                        sim.queue.append(packet)  # repro: allow-RPR104 -- test fixture exercising waivers
                """,
        })
        report = run_analysis([tmp_path])
        assert _codes(report.findings) == []

    def test_unjustified_waiver_becomes_rpr999(self, tmp_path):
        _write(tmp_path, {
            "proj/__init__.py": "",
            "proj/obs/__init__.py": "",
            "proj/obs/hooks.py": """\
                class Meddler:
                    def on_inject(self, sim, packet):
                        sim.queue.append(packet)  # repro: allow-RPR104
                """,
        })
        report = run_analysis([tmp_path])
        assert _codes(report.findings) == ["RPR999"]
