"""Incremental ancestor analysis vs from-scratch sweeps.

:class:`repro.accel.IncrementalSweeper` promises bit-identical
descendant and coverage masks to a fresh :class:`StageSweeper` after
every :func:`repro.core.expansion.expand_rfc` step -- the incremental
path re-sweeps only the dirty rows (endpoints of rewired edges and
their up-neighbors), so these tests compare full mask arrays, not just
summary scalars, and check that the dirty set actually stays a small
fraction of the network (otherwise the optimization is a no-op).
"""

import numpy as np
import pytest

from repro import accel
from repro.core.expansion import expand_rfc, expansion_trajectory
from repro.core.rfc import radix_regular_rfc
from repro.topologies.packed import stage_arrays_of

pytestmark = pytest.mark.skipif(
    not accel.is_available(), reason="numpy accel layer unavailable"
)


def _scratch(topo):
    return accel.StageSweeper.from_arrays(
        topo.level_sizes, stage_arrays_of(topo)
    )


class TestIncrementalEqualsScratch:
    def test_masks_identical_across_expansion(self):
        topo = radix_regular_rfc(8, 16, 3, rng=3)
        inc = accel.IncrementalSweeper(
            topo.level_sizes, stage_arrays_of(topo)
        )
        for step in range(4):
            topo, _report = expand_rfc(topo, 1, rng=100 + step)
            stats = inc.update(topo.level_sizes, stage_arrays_of(topo))
            scratch = _scratch(topo)
            for ours, theirs in zip(
                inc.descendant_masks(), scratch.descendant_masks()
            ):
                assert np.array_equal(ours, theirs)
            assert np.array_equal(
                inc.coverage_masks(), scratch.coverage_masks()
            )
            assert inc.has_updown() == scratch.has_updown()
            assert inc.reachable_fraction() == scratch.reachable_fraction()
            assert 0 < stats["dirty_rows"] <= stats["total_rows"]

    def test_dirty_set_stays_small(self):
        """The point of incrementality: an O(R) rewire must not dirty
        the whole network."""
        topo = radix_regular_rfc(8, 64, 3, rng=3)
        inc = accel.IncrementalSweeper(
            topo.level_sizes, stage_arrays_of(topo)
        )
        topo, _ = expand_rfc(topo, 1, rng=7)
        stats = inc.update(topo.level_sizes, stage_arrays_of(topo))
        assert stats["dirty_rows"] < stats["total_rows"] / 2

    def test_update_rejects_level_count_change(self):
        topo = radix_regular_rfc(8, 16, 3, rng=3)
        inc = accel.IncrementalSweeper(
            topo.level_sizes, stage_arrays_of(topo)
        )
        other = radix_regular_rfc(8, 16, 2, rng=3)
        with pytest.raises(ValueError):
            inc.update(other.level_sizes, stage_arrays_of(other))

    def test_update_rejects_shrink(self):
        big = radix_regular_rfc(8, 20, 3, rng=3)
        small = radix_regular_rfc(8, 16, 3, rng=3)
        inc = accel.IncrementalSweeper(
            big.level_sizes, stage_arrays_of(big)
        )
        with pytest.raises(ValueError):
            inc.update(small.level_sizes, stage_arrays_of(small))


class TestExpansionTrajectory:
    def test_accel_and_reference_agree(self):
        topo = radix_regular_rfc(8, 16, 3, rng=3)
        final_a, report_a, steps_a = expansion_trajectory(
            topo, steps=3, rng=42, accel=True
        )
        final_r, report_r, steps_r = expansion_trajectory(
            topo, steps=3, rng=42, accel=False
        )
        assert final_a.links() == final_r.links()
        assert report_a == report_r
        assert len(steps_a) == len(steps_r) == 3
        for a, r in zip(steps_a, steps_r):
            assert a.level_sizes == r.level_sizes
            assert a.num_terminals == r.num_terminals
            assert a.reachable_fraction == r.reachable_fraction
            assert a.updown_ok == r.updown_ok

    def test_steps_record_growth(self):
        topo = radix_regular_rfc(8, 16, 3, rng=3)
        _final, _report, steps = expansion_trajectory(
            topo, steps=2, rng=11
        )
        assert steps[0].num_terminals < steps[1].num_terminals
        for step in steps:
            assert 0.0 <= step.reachable_fraction <= 1.0
