"""Spectral expander analysis tests."""

import math

import pytest

from repro.graphs.spectral import (
    adjacency_eigenvalues,
    adjacency_spectrum_gap,
    algebraic_connectivity,
    cheeger_bounds,
)


def complete_graph(n):
    return [[v for v in range(n) if v != u] for u in range(n)]


def cycle_graph(n):
    return [[(u - 1) % n, (u + 1) % n] for u in range(n)]


def two_triangles():
    return [[1, 2], [0, 2], [0, 1], [4, 5], [3, 5], [3, 4]]


class TestEigenvalues:
    def test_complete_graph_spectrum(self):
        # K_n: lambda_1 = n-1, lambda_2 = -1.
        top = adjacency_eigenvalues(complete_graph(5), k=2)
        assert top[0] == pytest.approx(4.0)
        assert top[1] == pytest.approx(-1.0)

    def test_cycle_spectrum(self):
        # C_n: lambda_1 = 2, lambda_2 = 2 cos(2 pi / n).
        top = adjacency_eigenvalues(cycle_graph(8), k=2)
        assert top[0] == pytest.approx(2.0)
        assert top[1] == pytest.approx(2 * math.cos(2 * math.pi / 8))

    def test_empty(self):
        assert adjacency_eigenvalues([]) == []


class TestSpectrumGap:
    def test_complete_graph_best(self):
        assert adjacency_spectrum_gap(complete_graph(6)) == pytest.approx(
            (5 - (-1)) / 5
        )

    def test_disconnected_zero_gap(self):
        # lambda_1 = lambda_2 for two identical components.
        assert adjacency_spectrum_gap(two_triangles()) == pytest.approx(0.0)

    def test_long_cycle_poor_expander(self):
        assert adjacency_spectrum_gap(cycle_graph(40)) < 0.05

    def test_rfc_is_better_expander_than_cft(self, cft_8_3, rfc_medium):
        """Random wiring widens the spectral gap (expander lineage)."""
        assert adjacency_spectrum_gap(rfc_medium.adjacency()) > (
            adjacency_spectrum_gap(cft_8_3.adjacency())
        )


class TestFiedler:
    def test_disconnected_zero(self):
        assert algebraic_connectivity(two_triangles()) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_complete_graph(self):
        # K_n Laplacian spectrum: 0, n, n, ..., n.
        assert algebraic_connectivity(complete_graph(5)) == pytest.approx(5.0)

    def test_path_small(self):
        adj = [[1], [0, 2], [1]]
        assert algebraic_connectivity(adj) == pytest.approx(1.0)

    def test_trivial(self):
        assert algebraic_connectivity([[]]) == 0.0


class TestCheeger:
    def test_sandwich_order(self, rfc_medium):
        lower, upper = cheeger_bounds(rfc_medium.adjacency())
        assert 0 < lower <= upper

    def test_disconnected(self):
        lower, upper = cheeger_bounds(two_triangles())
        assert lower == pytest.approx(0.0, abs=1e-9)

    def test_bisection_respects_cheeger_lower(self, rfc_medium):
        """h(G) >= fiedler/2 -> bisection >= (n/2) * h lower bound is
        consistent with the local-search estimate."""
        from repro.graphs.bisection import estimate_bisection_width

        lower, _ = cheeger_bounds(rfc_medium.adjacency())
        n = rfc_medium.num_switches
        estimate = estimate_bisection_width(rfc_medium.adjacency(), rng=1)
        assert estimate >= lower * (n // 2) * 0.99


class TestSec42Experiment:
    def test_runs_and_matches_paper_analytics(self):
        from repro.experiments import run_experiment

        table = run_experiment("sec42", quick=True, seed=0)
        analytic = {
            row[0]: row[2] for row in table.rows if row[2] is not None
        }
        assert analytic["CFT R=36 (any l)"] == 1.0
        assert analytic["RRN R=36"] == pytest.approx(0.88, abs=0.01)
        assert analytic["RFC R=36 l=2"] == pytest.approx(0.80, abs=0.01)
        assert analytic["RFC R=36 l=3"] == pytest.approx(0.86, abs=0.01)

    def test_empirical_rows_have_gaps(self):
        from repro.experiments import run_experiment

        table = run_experiment("sec42", quick=True, seed=0)
        gaps = [row[4] for row in table.rows if row[4] is not None]
        assert len(gaps) == 3
        assert all(g > 0.05 for g in gaps)
