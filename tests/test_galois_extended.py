"""Extended finite-field coverage: larger orders and slow-path code."""

import pytest

from repro.topologies.galois import TABLE_LIMIT, GaloisField, field


class TestLargerFields:
    @pytest.mark.parametrize("q", [32, 49, 64])
    def test_table_backed_orders(self, q):
        gf = field(q)
        assert gf.order == q
        # Spot-check group laws.
        for a in (1, 2, q - 1):
            assert gf.mul(a, gf.inv(a)) == 1
            assert gf.add(a, gf.neg(a)) == 0

    def test_beyond_table_limit_uses_slow_path(self):
        q = 81  # 3^4 > TABLE_LIMIT
        assert q > TABLE_LIMIT
        gf = GaloisField(q)
        assert gf._mul_table is None
        assert gf.mul(5, 1) == 5
        assert gf.mul(0, 17) == 0
        a = 23
        assert gf.mul(a, gf.inv(a)) == 1
        assert gf.add(a, gf.neg(a)) == 0

    def test_frobenius_is_additive(self):
        """(a+b)^p = a^p + b^p in characteristic p."""
        gf = field(9)
        p = gf.characteristic
        for a in range(9):
            for b in range(9):
                left = gf.pow(gf.add(a, b), p)
                right = gf.add(gf.pow(a, p), gf.pow(b, p))
                assert left == right

    def test_multiplicative_order_divides_q_minus_1(self):
        gf = field(8)
        for a in range(1, 8):
            assert gf.pow(a, 7) == 1  # x^(q-1) = 1

    def test_sub(self):
        gf = field(7)
        for a in range(7):
            for b in range(7):
                assert gf.add(gf.sub(a, b), b) == a


class TestProjectiveLargerOrders:
    @pytest.mark.parametrize("q", [7, 8])
    def test_axioms_hold(self, q):
        from repro.topologies.projective import projective_plane

        plane = projective_plane(q)
        assert plane.size == q * q + q + 1
        # Dual regularity.
        assert all(
            len(plane.points_on_line(l)) == q + 1
            for l in range(0, plane.size, 7)
        )
        # Sampled two-points-one-line.
        for a in range(0, plane.size, 11):
            for b in range(a + 1, plane.size, 13):
                line = plane.line_through(a, b)
                assert plane.is_incident(a, line)
