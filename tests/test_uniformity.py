"""Statistical quality of the random generators.

The Steger-Wormald construction is supposed to be asymptotically
uniform over simple (bi)regular graphs.  These tests check observable
consequences with chi-square goodness-of-fit: across many independent
samples, every potential edge should appear with (nearly) the same
frequency, and the traffic patterns should be unbiased.
"""

import random
from collections import Counter

from scipy import stats as scipy_stats

from repro.simulation.traffic import RandomPairingTraffic, UniformTraffic
from repro.topologies.random_graphs import (
    random_bipartite_graph,
    random_regular_graph,
)

ALPHA = 1e-4  # very loose: we only want to catch gross bias


class TestEdgeFrequencyUniformity:
    def test_bipartite_edges_equally_likely(self):
        n1, d1, n2, d2 = 8, 3, 8, 3
        samples = 400
        counts = Counter()
        rng = random.Random(0)
        for _ in range(samples):
            adj1, _ = random_bipartite_graph(n1, d1, n2, d2, rng=rng)
            for u, row in enumerate(adj1):
                for v in row:
                    counts[(u, v)] += 1
        observed = [counts.get((u, v), 0) for u in range(n1) for v in range(n2)]
        # Each of the 64 potential edges appears with expectation
        # samples * d1 / n2 = 150.
        _, p_value = scipy_stats.chisquare(observed)
        assert p_value > ALPHA

    def test_regular_edges_equally_likely(self):
        n, d = 10, 3
        samples = 400
        counts = Counter()
        rng = random.Random(1)
        for _ in range(samples):
            adj = random_regular_graph(n, d, rng=rng)
            for u, row in enumerate(adj):
                for v in row:
                    if u < v:
                        counts[(u, v)] += 1
        observed = [
            counts.get((u, v), 0) for u in range(n) for v in range(u + 1, n)
        ]
        _, p_value = scipy_stats.chisquare(observed)
        assert p_value > ALPHA

    def test_vertex_degrees_always_exact(self):
        # Uniformity aside, degrees are a hard invariant.
        rng = random.Random(2)
        for _ in range(50):
            adj = random_regular_graph(12, 4, rng=rng)
            assert all(len(row) == 4 for row in adj)


class TestTrafficUniformity:
    def test_uniform_traffic_chisquare(self):
        traffic = UniformTraffic(8)
        rng = random.Random(3)
        counts = Counter(traffic.destination(2, rng) for _ in range(7_000))
        observed = [counts.get(d, 0) for d in range(8) if d != 2]
        _, p_value = scipy_stats.chisquare(observed)
        assert p_value > ALPHA

    def test_pairings_cover_partners_uniformly(self):
        # Terminal 0's partner across many pattern instances should be
        # uniform over the other terminals.
        n = 6
        counts = Counter()
        for seed in range(900):
            pattern = RandomPairingTraffic(n, rng=seed)
            counts[pattern.partner[0]] += 1
        observed = [counts.get(d, 0) for d in range(1, n)]
        _, p_value = scipy_stats.chisquare(observed)
        assert p_value > ALPHA
