"""repro.exec metrics aggregation and its cache interplay.

``collect_metrics`` tasks must ship a per-worker registry export back
inside ``SimResult.metrics`` without perturbing results, cache keys or
the cached byte layout.
"""

import json

import pytest

from repro.exec import Executor, ResultCache, SimTask, merged_metrics
from repro.simulation.config import SimulationParams

FAST = SimulationParams(measure_cycles=300, warmup_cycles=100, seed=5)


def make_task(topo, seed=1, load=0.5, collect=False):
    return SimTask(
        topo=topo,
        traffic_name="uniform",
        load=load,
        params=FAST,
        traffic_seed=seed,
        collect_metrics=collect,
    )


class TestCollectMetrics:
    def test_bare_task_has_no_metrics(self, rfc_small):
        [result], _ = Executor().run_sim_tasks([make_task(rfc_small)])
        assert result.metrics is None

    def test_collecting_task_ships_export(self, rfc_small):
        [result], _ = Executor().run_sim_tasks(
            [make_task(rfc_small, collect=True)]
        )
        assert result.metrics is not None
        counters = result.metrics["counters"]
        assert counters["eject.packets"] == result.delivered_packets

    def test_collection_does_not_change_results(self, rfc_small):
        [bare], _ = Executor().run_sim_tasks([make_task(rfc_small)])
        [inst], _ = Executor().run_sim_tasks(
            [make_task(rfc_small, collect=True)]
        )
        # metrics is compare=False: equality is over measurements only.
        assert bare == inst
        assert bare.core_dict() == inst.core_dict()


class TestMergedMetrics:
    def test_counters_add_across_tasks(self, rfc_small):
        tasks = [
            make_task(rfc_small, seed=s, collect=True) for s in (1, 2)
        ]
        results, _ = Executor().run_sim_tasks(tasks)
        merged = merged_metrics(results)
        expected = sum(
            r.metrics["counters"]["eject.packets"] for r in results
        )
        assert merged["counters"]["eject.packets"] == expected
        assert expected == sum(r.delivered_packets for r in results)

    def test_skips_bare_results(self, rfc_small):
        tasks = [
            make_task(rfc_small, seed=1, collect=True),
            make_task(rfc_small, seed=2, collect=False),
        ]
        results, _ = Executor().run_sim_tasks(tasks)
        merged = merged_metrics(results)
        only = results[0].metrics
        assert (
            merged["counters"]["eject.packets"]
            == only["counters"]["eject.packets"]
        )

    def test_empty_batch_merges_to_empty_sections(self):
        merged = merged_metrics([])
        assert merged == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timeseries": {},
        }


class TestCacheSemantics:
    def test_collecting_task_skips_cache_read(self, rfc_small, tmp_path):
        cache = ResultCache(tmp_path)
        executor = Executor(cache=cache)
        # Warm the cache with a bare run.
        executor.run_sim_tasks([make_task(rfc_small)])
        [result], report = executor.run_sim_tasks(
            [make_task(rfc_small, collect=True)]
        )
        assert report.cache_hits == 0
        assert result.metrics is not None

    def test_collecting_task_still_warms_cache(self, rfc_small, tmp_path):
        cache = ResultCache(tmp_path)
        executor = Executor(cache=cache)
        [collected], _ = executor.run_sim_tasks(
            [make_task(rfc_small, collect=True)]
        )
        [cached], report = executor.run_sim_tasks([make_task(rfc_small)])
        assert report.cache_hits == 1
        assert cached.metrics is None
        # compare=False on metrics: the hit equals the collected result.
        assert cached == collected

    def test_cache_entry_bytes_free_of_metrics(self, rfc_small, tmp_path):
        cache = ResultCache(tmp_path)
        Executor(cache=cache).run_sim_tasks(
            [make_task(rfc_small, collect=True)]
        )
        [entry] = [p for p in tmp_path.rglob("*.json") if p.is_file()]
        payload = json.loads(entry.read_text())
        assert "metrics" not in payload["result"]

    def test_collect_flag_not_in_cache_key(self, rfc_small, tmp_path):
        cache = ResultCache(tmp_path)
        executor = Executor(cache=cache)
        executor.run_sim_tasks([make_task(rfc_small, collect=True)])
        executor.run_sim_tasks([make_task(rfc_small, collect=False)])
        # Both variants of the same point share one cache entry.
        assert len(cache) == 1


class TestParallelAggregation:
    def test_parallel_matches_serial_metrics(self, rfc_small):
        tasks = [
            make_task(rfc_small, seed=s, collect=True) for s in (1, 2, 3)
        ]
        serial, _ = Executor(workers=1).run_sim_tasks(tasks)
        parallel, _ = Executor(workers=2).run_sim_tasks(tasks)
        assert serial == parallel
        a = json.dumps(merged_metrics(serial), sort_keys=True)
        b = json.dumps(merged_metrics(parallel), sort_keys=True)
        assert a == b


class TestAmbientReplication:
    def test_replicated_point_records_merged_export(self, cft_4_3):
        import repro.obs as obs
        from repro.simulation.replication import replicated_point

        with obs.using_metrics(True):
            agg = replicated_point(
                cft_4_3, "uniform", 0.3, FAST, replications=2
            )
            collected = obs.collected()
        [label] = list(collected)
        assert label == f"point:{cft_4_3.name}:uniform"
        total = collected[label]["counters"]["eject.packets"]
        assert total == sum(r.delivered_packets for r in agg.results)

    def test_replicated_point_bare_by_default(self, cft_4_3):
        import repro.obs as obs
        from repro.simulation.replication import replicated_point

        obs.configure(metrics=False)
        agg = replicated_point(
            cft_4_3, "uniform", 0.3, FAST, replications=2
        )
        assert all(r.metrics is None for r in agg.results)
        assert obs.collected() == {}
